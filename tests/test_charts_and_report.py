"""Tests for the ASCII charts and the benchmark report generator."""

import io
import json

import pytest

from repro.errors import ReproError
from repro.viz.charts import ascii_bar_chart, comparison_chart


class TestBarChart:
    def test_proportional_bars(self):
        out = ascii_bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_title_and_units(self):
        out = ascii_bar_chart([("a", 1.0)], title="costs", unit="s")
        assert out.startswith("costs")
        assert "1.00 s" in out

    def test_zero_values_render(self):
        out = ascii_bar_chart([("a", 0.0), ("b", 0.0)])
        assert "0.00" in out

    def test_small_nonzero_gets_visible_bar(self):
        out = ascii_bar_chart([("tiny", 0.001), ("big", 100.0)], width=10)
        assert out.splitlines()[0].count("█") == 1

    def test_empty_series(self):
        assert ascii_bar_chart([], title="t") == "t"

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            ascii_bar_chart([("a", -1.0)])

    def test_bad_width_rejected(self):
        with pytest.raises(ReproError):
            ascii_bar_chart([("a", 1.0)], width=0)


class TestComparisonChart:
    def test_winner_and_ratio(self):
        out = comparison_chart([("1%", 1.0, 4.0)], "incr", "batch")
        assert "incr wins" in out
        assert "4.0x" in out

    def test_right_side_can_win(self):
        out = comparison_chart([("20%", 9.0, 3.0)], "incr", "batch")
        assert "batch wins" in out

    def test_title(self):
        out = comparison_chart([("x", 1.0, 2.0)], "l", "r", title="versus")
        assert out.startswith("versus")


@pytest.fixture
def bench_json(tmp_path):
    """A miniature pytest-benchmark JSON covering several groups."""
    def bench(group, name, mean_seconds, extra=None, params=None):
        return {
            "group": group,
            "name": name,
            "params": params or {},
            "extra_info": extra or {},
            "stats": {"mean": mean_seconds},
        }

    payload = {
        "benchmarks": [
            bench("E4-simulation", "test_sim[300]", 0.001, {"graph_size": 1000},
                  {"size": 300}),
            bench("E4-simulation", "test_sim[1000]", 0.004, {"graph_size": 3000},
                  {"size": 1000}),
            bench("E5-incremental-sim", "test_inc[1]", 0.0002,
                  {"percent_changed": 1}),
            bench("E5-batch-sim", "test_batch[1]", 0.008, {"percent_changed": 1}),
            bench("E5-incremental-sim", "test_inc[50]", 0.009,
                  {"percent_changed": 50}),
            bench("E5-batch-sim", "test_batch[50]", 0.008, {"percent_changed": 50}),
            bench("E7-compress", "test_build[bis-collab]", 0.02,
                  {"dataset": "collab", "method": "bisimulation",
                   "size_reduction_pct": 21.0}),
            bench("E8-direct", "test_direct[tw]", 0.05, {"dataset": "tw"}),
            bench("E8-compressed", "test_comp[tw]", 0.006, {"dataset": "tw"}),
            bench("E9-maintain", "test_m[1]", 0.001, {"percent_changed": 1}),
            bench("E9-recompress", "test_r[1]", 0.008, {"percent_changed": 1}),
            bench("E10-topk", "test_topk[1]", 0.013, {"k": 1}),
            bench("ABL2-routes", "test_route_direct", 0.08),
            bench("ABL2-routes", "test_route_cache", 0.00002),
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return path


class TestReport:
    def test_render_report_covers_all_sections(self, bench_json):
        import importlib.util
        import pathlib

        report_path = (
            pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
        )
        spec = importlib.util.spec_from_file_location("bench_report", report_path)
        report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(report)  # type: ignore[union-attr]

        buffer = io.StringIO()
        report.render_report(bench_json, out=buffer)
        text = buffer.getvalue()
        assert "E4: query evaluation cost" in text
        assert "E5: incremental vs batch" in text
        assert "crossover" in text
        assert "E7: compression ratio" in text
        assert "E8: query time" in text
        assert "E9: maintain compression" in text
        assert "E10: top-K" in text
        assert "Ablations" in text
        assert "incremental wins" in text

    def test_crossover_detection(self, bench_json):
        import importlib.util
        import pathlib

        report_path = (
            pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
        )
        spec = importlib.util.spec_from_file_location("bench_report2", report_path)
        report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(report)  # type: ignore[union-attr]

        buffer = io.StringIO()
        report.render_report(bench_json, out=buffer)
        # At 50% the incremental side is slower, so a crossover is reported.
        assert "crossover: at or before ΔG = 50%" in buffer.getvalue()

    def test_cli_usage_errors(self, tmp_path):
        import importlib.util
        import pathlib

        report_path = (
            pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "report.py"
        )
        spec = importlib.util.spec_from_file_location("bench_report3", report_path)
        report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(report)  # type: ignore[union-attr]
        assert report.main([]) == 2
        assert report.main([str(tmp_path / "missing.json")]) == 2
