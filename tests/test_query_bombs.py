"""Adversarial query bombs: the guards must defuse what the planner cannot.

A *query bomb* is a legal query whose evaluation cost explodes on the
wrong graph: unconstrained pattern nodes joined by ``'*'`` bounds over
hub-heavy, star, or self-loop-dense topologies, where every candidate's
reachability ball is the whole graph.  This suite drives each bomb shape
through the guarded paths and asserts the three promises
:mod:`repro.engine.estimator` makes:

* guards trip **deterministically** (same bomb, same budget, same visit
  count and same partial relation — run to run);
* a partial result is a **sound subset**: every pair it reports is in the
  exact relation, verified against unguarded evaluation on small twins of
  each bomb;
* sequential and sharded-parallel guarded runs **agree on the partial
  flag** (one shared budget governs the whole fan-out), and with a
  generous budget both are byte-identical to the unguarded answer.
"""

from __future__ import annotations

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.estimator import (
    GUARD_NODE_BUDGET,
    GUARD_TIME_LIMIT,
    QueryBudget,
)
from repro.errors import BudgetExceededError
from repro.graph.digraph import Graph
from repro.graph.generators import twitter_like_graph
from repro.matching.bounded import match_bounded
from repro.pattern.pattern import Pattern


# ----------------------------------------------------------------------
# bomb construction: three graph topologies x wildcard-clique patterns
# ----------------------------------------------------------------------

def wildcard_cycle(k: int = 3) -> Pattern:
    """``k`` unconstrained nodes in a ``'*'``-bound cycle: every candidate
    set is the whole graph and no bound truncates any traversal."""
    pattern = Pattern(f"bomb-cycle{k}")
    names = [f"Q{i}" for i in range(k)]
    for name in names:
        pattern.add_node(name, None)
    for index, name in enumerate(names):
        pattern.add_edge(name, names[(index + 1) % k], None)
    return pattern


def hub_graph(n: int, seed: int = 3) -> Graph:
    """Hub-heavy preferential-attachment graph (the Twitter stand-in)."""
    return twitter_like_graph(n, seed=seed)


def star_graph(arms: int, arm_length: int = 2) -> Graph:
    """High-fanout star with return edges: the hub reaches everything in
    one hop and everything reaches the hub back, so every ball is the
    whole graph."""
    graph = Graph()
    graph.add_node("hub", kind="hub")
    for arm in range(arms):
        previous = "hub"
        for step in range(arm_length):
            node = f"a{arm}.{step}"
            graph.add_node(node, kind="leaf")
            graph.add_edge(previous, node)
            previous = node
        graph.add_edge(previous, "hub")
    return graph


def loop_cycle_graph(n: int) -> Graph:
    """A directed cycle where every node also carries a self loop —
    self loops keep every frontier alive at every level, the worst case
    for ``'*'`` traversals that only stop at frontier death."""
    graph = Graph()
    for index in range(n):
        graph.add_node(index, kind="ring")
    for index in range(n):
        graph.add_edge(index, index)
        graph.add_edge(index, (index + 1) % n)
    return graph


#: (id, big graph for guard tests, small twin for exact comparison)
BOMB_CASES = [
    ("hub-heavy", lambda: hub_graph(400), lambda: hub_graph(120)),
    ("fanout-star", lambda: star_graph(150), lambda: star_graph(40)),
    ("self-loop-cycle", lambda: loop_cycle_graph(250), lambda: loop_cycle_graph(60)),
]
BOMB_IDS = [case_id for case_id, _, _ in BOMB_CASES]

TIGHT = QueryBudget(node_visits=500, allow_partial=True)
GENEROUS = QueryBudget(node_visits=10**9, allow_partial=True)


@pytest.mark.parametrize(("case_id", "big", "_small"), BOMB_CASES, ids=BOMB_IDS)
def test_guard_trips_deterministically(case_id, big, _small):
    """Same bomb + same budget = same trip, same visits, same relation."""
    graph = big()
    pattern = wildcard_cycle()
    first = match_bounded(graph, pattern, budget=TIGHT)
    second = match_bounded(graph, pattern, budget=TIGHT)
    for result in (first, second):
        assert result.stats["partial"] is True, (case_id, result.stats)
        assert result.stats["guard"] == GUARD_NODE_BUDGET, (case_id, result.stats)
    assert first.stats["visits"] == second.stats["visits"], case_id
    assert first.relation == second.relation, case_id
    assert first.relation.to_dict() == second.relation.to_dict(), case_id


@pytest.mark.parametrize(("case_id", "_big", "small"), BOMB_CASES, ids=BOMB_IDS)
def test_partial_result_is_sound_subset(case_id, _big, small):
    """Every pair a guarded run reports is in the exact relation.

    Verified on small twins of each bomb topology, where the unguarded
    cubic evaluation is still feasible; budgets are swept so the subset
    property holds at *every* truncation point, not just one.
    """
    graph = small()
    pattern = wildcard_cycle()
    exact = match_bounded(graph, pattern)
    exact_pairs = set(exact.relation.pairs())
    for visits in (50, 200, 1000, 5000):
        budget = QueryBudget(node_visits=visits, allow_partial=True)
        partial = match_bounded(graph, pattern, budget=budget)
        assert set(partial.relation.pairs()) <= exact_pairs, (
            f"{case_id}: budget {visits} produced pairs outside the exact "
            f"relation"
        )
        if not partial.stats["partial"]:
            # Budget high enough to finish: must be the exact answer.
            assert partial.relation == exact.relation, (case_id, visits)


@pytest.mark.parametrize(("case_id", "big", "_small"), BOMB_CASES, ids=BOMB_IDS)
def test_hard_budget_raises_without_allow_partial(case_id, big, _small):
    graph = big()
    pattern = wildcard_cycle()
    with pytest.raises(BudgetExceededError, match="node-budget"):
        match_bounded(graph, pattern, budget=QueryBudget(node_visits=500))


def test_time_limit_trips_and_reports():
    """An (effectively) elapsed wall-clock limit stops the traversal.

    Soundness of the truncated relation is covered by the subset sweep
    above; what a time trip must additionally report is *which* guard
    fired, so operators can tell a slow query from a big one.
    """
    graph = hub_graph(400)
    pattern = wildcard_cycle()
    budget = QueryBudget(seconds=1e-9, allow_partial=True)
    result = match_bounded(graph, pattern, budget=budget)
    assert result.stats["partial"] is True
    assert result.stats["guard"] == GUARD_TIME_LIMIT


@pytest.mark.parametrize(("case_id", "big", "_small"), BOMB_CASES, ids=BOMB_IDS)
def test_sequential_and_parallel_agree_on_partial(case_id, big, _small):
    """One budget, any worker count: the partial flag is a query property.

    The node budget is shared across shard workers through a cross-process
    counter, so a bomb trips it sharded exactly as it does sequentially —
    and with a generous budget both paths return the identical exact
    relation with ``partial=False``.
    """
    graph = big()
    pattern = wildcard_cycle()
    engine = QueryEngine()
    engine.register_graph("g", graph)
    kwargs = dict(use_cache=False, cache_result=False)

    sequential = engine.evaluate("g", pattern, budget=TIGHT, **kwargs)
    parallel = engine.evaluate("g", pattern, budget=TIGHT, workers=2, **kwargs)
    assert sequential.stats["partial"] is True, (case_id, sequential.stats)
    assert parallel.stats["partial"] is True, (case_id, parallel.stats)

    relaxed_seq = engine.evaluate("g", pattern, budget=GENEROUS, **kwargs)
    relaxed_par = engine.evaluate(
        "g", pattern, budget=GENEROUS, workers=2, **kwargs
    )
    unguarded = engine.evaluate("g", pattern, **kwargs)
    for label, result in (("sequential", relaxed_seq), ("parallel", relaxed_par)):
        assert result.stats["partial"] is False, (case_id, label, result.stats)
        assert result.relation == unguarded.relation, (case_id, label)
        assert result.relation.to_dict() == unguarded.relation.to_dict(), (
            case_id,
            label,
        )


def test_partial_results_are_never_cached():
    """A truncated answer must not poison the query cache.

    After a guarded partial evaluation, an unbudgeted evaluation of the
    same query must route direct (not cache), return the exact relation,
    and only *that* result may be cached.
    """
    graph = hub_graph(120)
    pattern = wildcard_cycle()
    engine = QueryEngine()
    engine.register_graph("g", graph)

    partial = engine.evaluate("g", pattern, budget=TIGHT)
    assert partial.stats["partial"] is True

    exact = engine.evaluate("g", pattern)
    assert exact.stats["route"] == "direct", exact.stats
    assert exact.relation == match_bounded(graph, pattern).relation

    cached = engine.evaluate("g", pattern)
    assert cached.stats["route"] == "cache", cached.stats
    assert cached.relation == exact.relation


def test_parallel_time_limit_aborts_in_flight_shards():
    """The wall-clock guard cancels pool workers instead of waiting them out."""
    graph = hub_graph(400)
    pattern = wildcard_cycle()
    engine = QueryEngine()
    engine.register_graph("g", graph)
    budget = QueryBudget(seconds=1e-4, allow_partial=True)
    result = engine.evaluate(
        "g", pattern, budget=budget, workers=2, use_cache=False,
        cache_result=False,
    )
    assert result.stats["partial"] is True
    assert result.stats["guard"] == GUARD_TIME_LIMIT


def test_simulation_patterns_are_never_guarded():
    """Guards cover the bounded matcher only; all-bounds-1 queries run the
    quadratic simulation matcher, which cannot bomb — and must not report
    guard stats (sequential and parallel modes agree by construction)."""
    graph = hub_graph(200)
    pattern = Pattern("unit")
    pattern.add_node("A", None)
    pattern.add_node("B", None)
    pattern.add_edge("A", "B", 1)
    engine = QueryEngine()
    engine.register_graph("g", graph)
    tight = QueryBudget(node_visits=1, allow_partial=True)
    kwargs = dict(use_cache=False, cache_result=False)
    sequential = engine.evaluate("g", pattern, budget=tight, **kwargs)
    parallel = engine.evaluate("g", pattern, budget=tight, workers=2, **kwargs)
    for result in (sequential, parallel):
        assert "partial" not in result.stats or not result.stats["partial"]
    assert sequential.relation == parallel.relation
