"""Unit tests for graph (de)serialization."""

import json

import pytest

from repro.errors import StorageError
from repro.graph.digraph import Graph
from repro.graph.generators import collaboration_graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_edgelist,
    load_graph,
    save_edgelist,
    save_graph,
)


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        original = collaboration_graph(50, seed=1)
        path = save_graph(original, tmp_path / "g.json")
        assert load_graph(path) == original

    def test_round_trip_preserves_name(self, tmp_path):
        g = Graph(name="hello")
        g.add_node("a")
        path = save_graph(g, tmp_path / "g.json")
        assert load_graph(path).name == "hello"

    def test_integer_node_ids_round_trip(self, tmp_path):
        g = Graph.from_edges([(1, 2)])
        path = save_graph(g, tmp_path / "g.json")
        loaded = load_graph(path)
        assert loaded.has_edge(1, 2)

    def test_creates_parent_directories(self, tmp_path):
        g = Graph()
        g.add_node("a")
        path = save_graph(g, tmp_path / "deep" / "nested" / "g.json")
        assert path.exists()

    def test_unserializable_node_id_raises(self):
        g = Graph()
        g.add_node(("tuple", "id"))
        with pytest.raises(StorageError, match="JSON-serializable"):
            graph_to_dict(g)

    @pytest.mark.parametrize("node", [True, False])
    def test_bool_node_id_rejected(self, node):
        """bool is an int subclass but round-trips as 1/0 — refuse it.

        A graph with nodes ``True`` and ``1`` would otherwise serialize to
        JSON ``true`` and ``1`` and silently collide (or shadow each other)
        on load.
        """
        g = Graph()
        g.add_node(node)
        with pytest.raises(StorageError, match="JSON-serializable"):
            graph_to_dict(g)

    def test_int_node_ids_still_serialize(self, tmp_path):
        g = Graph.from_edges([(0, 1)])
        path = save_graph(g, tmp_path / "ints.json")
        assert load_graph(path) == g

    def test_attribute_named_node_round_trips(self, tmp_path):
        """An attribute literally named "node" must survive the round trip.

        ``graph_from_dict`` rebuilds via ``add_node(id, **attrs)``; with a
        non-positional-only node parameter the load crashed with a kwarg
        collision after the save had succeeded.
        """
        g = Graph()
        g.add_node("a", node="hub", self="yes")
        path = save_graph(g, tmp_path / "node_attr.json")
        assert load_graph(path) == g

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            load_graph(tmp_path / "missing.json")

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(StorageError, match="invalid JSON"):
            load_graph(path)

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(StorageError, match="not a repro.graph"):
            graph_from_dict({"format": "something-else"})

    def test_from_dict_rejects_wrong_version(self):
        payload = {"format": "repro.graph", "version": 99, "nodes": [], "edges": []}
        with pytest.raises(StorageError, match="version"):
            graph_from_dict(payload)

    def test_from_dict_rejects_malformed_nodes(self):
        payload = {"format": "repro.graph", "version": 1, "nodes": [{}], "edges": []}
        with pytest.raises(StorageError, match="malformed"):
            graph_from_dict(payload)

    def test_dict_shape_is_documented(self):
        g = Graph.from_edges([("a", "b")], nodes={"a": {"f": 1}, "b": {}})
        payload = graph_to_dict(g)
        assert payload["format"] == "repro.graph"
        assert payload["nodes"][0] == {"id": "a", "attrs": {"f": 1}}
        assert payload["edges"] == [["a", "b"]]
        json.dumps(payload)  # must be JSON-ready


class TestEdgeList:
    def test_round_trip_structure(self, tmp_path):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        path = save_edgelist(g, tmp_path / "g.tsv")
        loaded = load_edgelist(path)
        assert set(loaded.edges()) == set(g.edges())

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# header\n\na b\nb c\n")
        g = load_edgelist(path)
        assert g.num_edges == 2

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a b\nonly-one-token\n")
        with pytest.raises(StorageError, match=":2:"):
            load_edgelist(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_edgelist(tmp_path / "missing.tsv")

    def test_empty_graph_writes_empty_file(self, tmp_path):
        path = save_edgelist(Graph(), tmp_path / "empty.tsv")
        assert path.read_text() == ""
        assert load_edgelist(path).num_nodes == 0

    def test_default_name_is_stem(self, tmp_path):
        path = tmp_path / "social.tsv"
        path.write_text("a b\n")
        assert load_edgelist(path).name == "social"
