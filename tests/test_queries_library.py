"""Unit tests for the bundled query library (Fig. 4's Q1/Q2/Q3 analogue)."""

import pytest

from repro.datasets.queries import (
    QUERY_LIBRARY,
    get_query,
    q1_team_star,
    q2_delivery_chain,
    q3_review_diamond,
    q4_feedback_cycle,
    q5_reachability,
)
from repro.errors import PatternError
from repro.graph.generators import collaboration_graph
from repro.matching.bounded import match_bounded
from repro.matching.reference import naive_bounded


class TestLibraryShape:
    def test_all_queries_constructible_and_valid(self):
        for name in QUERY_LIBRARY:
            pattern = get_query(name)
            pattern.validate(require_output=True)
            assert pattern.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(PatternError, match="unknown library query"):
            get_query("q99")

    def test_star_topology(self):
        q = q1_team_star()
        assert dict(q.out_edges("SA")).keys() == {"SD", "BA", "ST"}
        assert not dict(q.in_edges("SA"))

    def test_chain_topology(self):
        q = q2_delivery_chain()
        assert list(dict(q.out_edges("SA"))) == ["SD"]
        assert list(dict(q.out_edges("SD"))) == ["ST"]
        assert list(dict(q.out_edges("ST"))) == ["UX"]

    def test_diamond_matches_paper_topology(self):
        q = q3_review_diamond()
        assert {t for t, _ in q.out_edges("SA")} == {"SD", "BA"}
        assert {t for t, _ in q.out_edges("SD")} == {"ST"}
        assert {t for t, _ in q.out_edges("BA")} == {"ST"}

    def test_cycle_is_cyclic(self):
        q = q4_feedback_cycle()
        assert q.bound("SA", "ST") == 2
        assert q.bound("ST", "SA") == 2

    def test_reachability_query_unbounded(self):
        assert q5_reachability().bound("SA", "DS") is None

    def test_experience_parameter_threads_through(self):
        q = q1_team_star(experience=9)
        assert q.predicate("SA").evaluate({"field": "SA", "experience": 9})
        assert not q.predicate("SA").evaluate({"field": "SA", "experience": 8})


class TestLibraryOnData:
    @pytest.mark.parametrize("name", sorted(QUERY_LIBRARY))
    def test_every_query_evaluates_and_agrees_with_oracle(self, name):
        graph = collaboration_graph(120, seed=17)
        pattern = get_query(name)
        assert match_bounded(graph, pattern).relation == naive_bounded(graph, pattern)

    def test_star_query_finds_experts_on_default_generator(self):
        graph = collaboration_graph(400, seed=18)
        result = match_bounded(graph, q1_team_star(experience=4))
        assert result.is_match
        assert result.output_matches()
