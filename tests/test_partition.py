"""Unit and property tests for the ball decomposition (`graph.partition`).

The load-bearing property is *cover soundness*: every node within the
pattern-derived radius of a pivot lies inside that pivot's shard, so a
shard-local truncated BFS equals a full-graph one and no successor row can
straddle shards undetected.  If this property broke, parallel evaluation
would silently return relations that are too large.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.errors import GraphError
from repro.graph.distance import bounded_descendants, multi_source_descendants
from repro.graph.generators import random_digraph
from repro.graph.partition import Shard, decompose, pattern_radius, source_depth
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern

from tests.test_differential import random_case

PROPERTY_SEEDS = range(30)


def decompose_case(seed: int, num_shards: int | None = None):
    graph, pattern = random_case(seed)
    candidates = simulation_candidates(graph, pattern)
    if num_shards is None:
        num_shards = random.Random(seed).randint(1, 5)
    return graph, pattern, candidates, decompose(graph, pattern, candidates, num_shards)


class TestDepths:
    def test_source_depth_is_max_out_bound(self):
        pattern = paper_pattern()  # SA's out-edges carry bounds 2 and 3
        assert source_depth(pattern, "SA") == 3
        assert source_depth(pattern, "SD") == 1
        assert source_depth(pattern, "ST") == 0  # no out-edges

    def test_source_depth_unbounded(self):
        pattern = (
            PatternBuilder("star")
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .edge("A", "B", None)
            .build()
        )
        assert source_depth(pattern, "A") is None
        assert pattern_radius(pattern) is None

    def test_pattern_radius_paper_example(self):
        assert pattern_radius(paper_pattern()) == 3


class TestDecomposeShape:
    def test_paper_example_two_shards(self):
        graph, pattern = paper_graph(), paper_pattern()
        candidates = simulation_candidates(graph, pattern)
        shards = decompose(graph, pattern, candidates, 2)
        assert len(shards) == 2
        assert all(isinstance(shard, Shard) for shard in shards)
        assert [shard.index for shard in shards] == [0, 1]

    def test_never_more_shards_than_requested_and_no_empty_shards(self):
        for seed in PROPERTY_SEEDS:
            _graph, _pattern, _candidates, shards = decompose_case(seed)
            assert all(shard.num_pivots > 0 for shard in shards)

    def test_more_shards_than_pivots_collapses(self):
        graph, pattern = paper_graph(), paper_pattern()
        candidates = simulation_candidates(graph, pattern)
        shards = decompose(graph, pattern, candidates, 100)
        total = sum(shard.num_pivots for shard in shards)
        assert len(shards) <= total

    def test_deterministic(self):
        graph, pattern = paper_graph(), paper_pattern()
        candidates = simulation_candidates(graph, pattern)
        first = decompose(graph, pattern, candidates, 3)
        second = decompose(graph, pattern, candidates, 3)
        assert first == second

    def test_bad_num_shards_raises(self):
        graph, pattern = paper_graph(), paper_pattern()
        candidates = simulation_candidates(graph, pattern)
        with pytest.raises(GraphError, match="num_shards"):
            decompose(graph, pattern, candidates, 0)

    def test_missing_candidates_raise(self):
        graph, pattern = paper_graph(), paper_pattern()
        with pytest.raises(GraphError, match="missing"):
            decompose(graph, pattern, {}, 2)

    def test_edge_free_pattern_has_no_shards(self):
        graph = paper_graph()
        pattern = Pattern("flat")
        pattern.add_node("A", 'field == "SA"')
        assert decompose(graph, pattern, {"A": {"Bob"}}, 4) == []


class TestCoverSoundness:
    @pytest.mark.parametrize("seed", PROPERTY_SEEDS, ids=lambda s: f"seed{s}")
    def test_every_pivot_ball_is_inside_its_shard(self, seed):
        graph, _pattern, _candidates, shards = decompose_case(seed)
        for shard in shards:
            for u, pivots in shard.pivots.items():
                radius = shard.depths[u]
                for pivot in pivots:
                    assert pivot in shard.nodes, f"seed {seed}: pivot outside shard"
                    ball = set(bounded_descendants(graph, pivot, radius))
                    missing = ball - shard.nodes
                    assert not missing, (
                        f"seed {seed}: shard {shard.index} ball for pivot "
                        f"{pivot!r} (pattern node {u!r}, radius {radius}) "
                        f"leaks {sorted(map(repr, missing))[:5]}"
                    )

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS, ids=lambda s: f"seed{s}")
    def test_every_source_candidate_owned_exactly_once(self, seed):
        graph, pattern, candidates, shards = decompose_case(seed)
        sources = [u for u in pattern.nodes() if source_depth(pattern, u) != 0]
        seen: dict[tuple, int] = {}
        for shard in shards:
            for u, pivots in shard.pivots.items():
                for pivot in pivots:
                    seen[(u, pivot)] = seen.get((u, pivot), 0) + 1
        expected = {(u, v) for u in sources for v in candidates[u]}
        assert set(seen) == expected, f"seed {seed}: pivot ownership mismatch"
        assert all(count == 1 for count in seen.values()), (
            f"seed {seed}: a pivot is owned by several shards"
        )

    def test_unbounded_radius_ball_is_full_descendant_set(self):
        graph = random_digraph(25, 60, seed=3)
        pattern = (
            PatternBuilder("reach")
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", None)
            .build()
        )
        candidates = simulation_candidates(graph, pattern)
        shards = decompose(graph, pattern, candidates, 2)
        for shard in shards:
            for pivot in shard.pivots.get("A", ()):
                reachable = set(bounded_descendants(graph, pivot, None))
                assert reachable <= shard.nodes

    def test_subgraph_bfs_equals_full_graph_bfs(self):
        """The consequence the executor relies on, stated directly."""
        for seed in range(10):
            graph, _pattern, _candidates, shards = decompose_case(seed)
            for shard in shards:
                subgraph = shard.subgraph(graph)
                for u, pivots in shard.pivots.items():
                    for pivot in pivots:
                        assert bounded_descendants(
                            subgraph, pivot, shard.depths[u]
                        ) == bounded_descendants(graph, pivot, shard.depths[u])


class TestMultiSourceDescendants:
    def test_sources_at_distance_zero(self):
        graph = paper_graph()
        out = multi_source_descendants(graph, ["Bob"], 0)
        assert out == {"Bob": 0}

    def test_matches_per_source_union(self):
        for seed in range(10):
            graph = random_digraph(20, 50, seed=seed)
            rng = random.Random(seed)
            sources = rng.sample(range(20), 4)
            bound = rng.choice([1, 2, 3, None])
            merged = multi_source_descendants(graph, sources, bound)
            union = set(sources)
            for source in sources:
                union |= set(bounded_descendants(graph, source, bound))
            assert set(merged) == union
            for node, dist in merged.items():
                if node not in sources:
                    best = min(
                        bounded_descendants(graph, s, bound).get(node, 10**9)
                        for s in sources
                    )
                    assert dist == best
