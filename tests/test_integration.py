"""Integration tests: whole-system workflows across modules."""

import pytest

from repro.compression.decompress import decompress_relation
from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
from repro.engine.engine import QueryEngine
from repro.engine.storage import GraphStore
from repro.expfinder import ExpFinder
from repro.graph.generators import collaboration_graph, twitter_like_graph
from repro.incremental.updates import EdgeInsertion, random_updates
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder
from repro.pattern.parser import format_pattern, parse_pattern


def hiring_query(bound=2):
    return (
        PatternBuilder("hiring")
        .node("SA", "experience >= 5", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", bound)
        .edge("SD", "ST", bound)
        .build(require_output=True)
    )


class TestFullPipeline:
    def test_store_query_rank_update_cycle(self, tmp_path):
        """Persist a graph, query it, rank, update, and observe the delta."""
        store = GraphStore(tmp_path)
        store.save_graph("fig1", paper_graph())
        store.save_pattern("team", paper_pattern())

        engine = QueryEngine(store=store)
        engine.load_graph("fig1")
        pattern = store.load_pattern("team")

        ranked = engine.top_k("fig1", pattern, 2)
        assert [match.node for match in ranked] == ["Bob", "Walt"]

        engine.pin("fig1", pattern)
        summary = engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        assert summary["pinned_deltas"][pattern.canonical_key()]["added"] == {
            ("SD", "Fred")
        }
        engine.persist_graph("fig1")
        assert store.load_graph("fig1").has_edge("Fred", "Eva")

    def test_pattern_text_round_trip_through_engine(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        text = format_pattern(paper_pattern())
        reparsed = parse_pattern(text)
        result = engine.evaluate("fig1", reparsed)
        assert sorted(result.relation.matches_of("SA")) == ["Bob", "Walt"]

    def test_all_three_routes_agree(self):
        """cache == compressed == direct on a synthetic workload."""
        graph = collaboration_graph(250, seed=21)
        query = hiring_query()

        direct_engine = QueryEngine()
        direct_engine.register_graph("g", graph.copy())
        direct = direct_engine.evaluate("g", query, use_compression=False)

        compressed_engine = QueryEngine()
        compressed_engine.register_graph("g", graph.copy())
        compressed_engine.compress_graph("g", attrs=("field", "experience"))
        via_compressed = compressed_engine.evaluate("g", query)
        assert via_compressed.stats["route"] == "compressed"
        assert via_compressed.relation == direct.relation

        cached = compressed_engine.evaluate("g", query)
        assert cached.stats["route"] == "cache"
        assert cached.relation == direct.relation

    def test_compressed_route_with_updates_stays_correct(self):
        graph = twitter_like_graph(300, seed=13)
        engine = QueryEngine()
        engine.register_graph("tw", graph)
        engine.compress_graph("tw", attrs=("field",))
        query = (
            PatternBuilder()
            .node("SA", field="SA", output=True)
            .node("SD", field="SD")
            .edge("SA", "SD", 2)
            .build(require_output=True)
        )
        for seed in range(3):
            engine.update_graph("tw", random_updates(graph, 15, seed=seed))
            via_engine = engine.evaluate("tw", query, use_cache=False)
            assert via_engine.relation == match_bounded(graph, query).relation

    def test_facade_end_to_end_on_synthetic_network(self, tmp_path):
        finder = ExpFinder(workdir=tmp_path)
        finder.add_graph("net", collaboration_graph(200, seed=30))
        query = hiring_query()

        experts = finder.find_experts("net", query, k=3)
        assert len(experts) <= 3
        if experts:
            table = finder.ranking_table(experts)
            assert str(experts[0].node) in table
            result = finder.match("net", query)
            detail = finder.drill_down(result, experts[0].node)
            assert "SA" in detail

    def test_incremental_and_compression_together(self):
        """Pinned query + maintained compression through the same updates."""
        graph = collaboration_graph(150, seed=31)
        engine = QueryEngine()
        engine.register_graph("g", graph)
        query = hiring_query()
        engine.pin("g", query)
        engine.compress_graph("g", attrs=("field", "experience"))
        for seed in range(4):
            engine.update_graph("g", random_updates(graph, 12, seed=40 + seed))
        # Pinned cache, compressed route and scratch recomputation all agree.
        recomputed = match_bounded(graph, query).relation
        cached = engine.evaluate("g", query)
        assert cached.stats["route"] == "cache"
        assert cached.relation == recomputed
        fresh = engine.evaluate("g", query, use_cache=False)
        assert fresh.stats["route"] == "compressed"
        assert fresh.relation == recomputed

    def test_compression_quotient_queryable_standalone(self):
        graph = twitter_like_graph(400, seed=32)
        from repro.compression.compress import compress

        compressed = compress(graph, attrs=("field",))
        query = (
            PatternBuilder()
            .node("SA", field="SA", output=True)
            .node("ST", field="ST")
            .edge("SA", "ST", 2)
            .build()
        )
        direct = match_bounded(graph, query).relation
        recovered = decompress_relation(
            match_bounded(compressed.quotient, query).relation, compressed
        )
        assert recovered == direct

    def test_examples_are_runnable(self):
        """The example scripts import and expose main() (smoke check)."""
        import importlib.util
        import pathlib

        examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
        for script in (
            "quickstart.py",
            "team_formation.py",
            "recommendation.py",
            "graph_editor.py",
        ):
            spec = importlib.util.spec_from_file_location(script[:-3], examples / script)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)  # type: ignore[union-attr]
            assert hasattr(module, "main")
