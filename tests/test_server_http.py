"""End-to-end tests over real HTTP: every endpoint, error mapping, keep-alive."""

import http.client
import json
import threading

import pytest

from repro.datasets.paper_example import paper_graph
from repro.engine.storage import GraphStore
from repro.graph.frozen import FrozenGraph
from repro.graph.io import graph_to_dict
from repro.matching.bounded import match_bounded
from repro.pattern.parser import parse_pattern
from repro.server import ExpFinderService, QueryServer, ServiceConfig

PATTERN = """
node SA* : field == "SA", experience >= 5
node SD : field == "SD"
edge SA -> SD : 2
"""


class Client:
    """One keep-alive HTTP/1.1 connection to the server under test."""

    def __init__(self, address):
        host, port = address
        self.conn = http.client.HTTPConnection(host, port, timeout=30)

    def request(self, method, path, payload=None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        self.conn.request(method, path, body=body, headers=headers)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)

    def close(self):
        self.conn.close()


@pytest.fixture
def server():
    service = ExpFinderService()
    service.register_graph("fig1", paper_graph())
    with QueryServer(service) as srv:
        srv.start()
        yield srv


@pytest.fixture
def client(server):
    client = Client(server.address)
    yield client
    client.close()


class TestEndpoints:
    def test_health(self, client):
        status, payload = client.get("/health")
        assert status == 200
        assert payload == {"status": "ok", "graphs": ["fig1"]}

    def test_register_evaluate_round_trip(self, client):
        status, info = client.post(
            "/graphs", {"name": "twin", "graph": graph_to_dict(paper_graph())}
        )
        assert status == 200
        assert info["nodes"] == 9
        status, reply = client.post(
            "/graphs/twin/evaluate", {"pattern": PATTERN}
        )
        assert status == 200
        direct = match_bounded(paper_graph(), parse_pattern(PATTERN, name="q"))
        assert reply["relation"]["sets"]["SA"] == sorted(
            direct.relation.matches_of("SA")
        )

    def test_evaluate_served_twice_hits_cache(self, client):
        _, first = client.post("/graphs/fig1/evaluate", {"pattern": PATTERN})
        _, second = client.post("/graphs/fig1/evaluate", {"pattern": PATTERN})
        assert first["stats"]["route"] == "direct"
        assert second["stats"]["route"] == "cache"
        assert second["relation"] == first["relation"]

    def test_batch(self, client):
        status, reply = client.post(
            "/graphs/fig1/batch", {"patterns": [PATTERN, PATTERN]}
        )
        assert status == 200
        assert reply["epoch"] == 0
        assert len(reply["results"]) == 2

    def test_topk(self, client):
        status, reply = client.post(
            "/graphs/fig1/topk", {"pattern": PATTERN, "k": 2}
        )
        assert status == 200
        assert [row["node"] for row in reply["experts"]] == ["Bob", "Walt"]

    def test_explain(self, client):
        status, reply = client.post(
            "/graphs/fig1/explain", {"pattern": PATTERN}
        )
        assert status == 200
        assert reply["graph"] == "fig1"
        assert reply["route"] in {"direct", "cache"}

    def test_update_publishes_epoch(self, client):
        status, reply = client.post(
            "/graphs/fig1/update",
            {"updates": [{"op": "add-edge", "source": "Fred", "target": "Eva"}]},
        )
        assert status == 200
        assert reply["epoch"] == 1
        _, after = client.post("/graphs/fig1/evaluate", {"pattern": PATTERN})
        assert after["epoch"] == 1
        assert "Fred" in after["relation"]["sets"]["SD"]

    def test_stats(self, client):
        client.post("/graphs/fig1/evaluate", {"pattern": PATTERN})
        status, stats = client.get("/stats")
        assert status == 200
        assert stats["requests"]["evaluate"] == 1
        assert stats["registry"]["graphs"]["fig1"]["current_epoch"] == 0
        assert stats["admission"]["admitted"] == 1

    def test_preload_over_http(self, tmp_path):
        store = GraphStore(tmp_path / "catalog")
        store.save_graph("warm", paper_graph())
        stored = store.load_graph("warm")
        store.save_snapshot("warm", FrozenGraph.freeze(stored))
        service = ExpFinderService(store=store)
        with QueryServer(service) as srv:
            srv.start()
            client = Client(srv.address)
            try:
                status, info = client.post(
                    "/graphs", {"name": "warm", "preload": True}
                )
                assert status == 200
                assert info["fault_ins"] == 1
                status, reply = client.post(
                    "/graphs/warm/evaluate", {"pattern": PATTERN}
                )
                assert status == 200
                assert reply["relation"]["sets"]["SA"]
            finally:
                client.close()

    def test_keep_alive_single_connection(self, client):
        for _ in range(3):
            status, _ = client.get("/health")
            assert status == 200
        # all three rode one socket; a fresh connection also works
        assert client.conn.sock is not None


class TestErrorMapping:
    def test_unknown_get_is_404(self, client):
        status, payload = client.get("/nope")
        assert status == 404
        assert payload["error"] == "NotFound"

    def test_unknown_post_route_is_400(self, client):
        status, payload = client.post("/graphs/fig1/rename", {"x": 1})
        assert status == 400
        assert payload["error"] == "ServerError"
        status, _ = client.post("/elsewhere", {"x": 1})
        assert status == 400

    def test_bad_pattern_is_400(self, client):
        status, payload = client.post(
            "/graphs/fig1/evaluate", {"pattern": "output SA"}
        )
        assert status == 400
        assert payload["error"] == "PatternError"

    def test_unknown_graph_is_400(self, client):
        status, payload = client.post(
            "/graphs/missing/evaluate", {"pattern": PATTERN}
        )
        assert status == 400
        assert "registered: fig1" in payload["message"]

    def test_blown_budget_is_408(self, client):
        status, payload = client.post(
            "/graphs/fig1/evaluate",
            {
                "pattern": PATTERN,
                "budget": {"node_visits": 1, "allow_partial": False},
            },
        )
        assert status == 408
        assert payload["error"] == "BudgetExceededError"

    def test_saturated_service_is_429(self, server, client):
        service = server.service
        # hold every slot so the request is refused at admission
        for _ in range(8):
            service.admission.acquire()
        service.admission.max_queue = 0
        try:
            status, payload = client.post(
                "/graphs/fig1/evaluate", {"pattern": PATTERN}
            )
        finally:
            for _ in range(8):
                service.admission.release()
        assert status == 429
        assert payload["error"] == "AdmissionError"

    def test_malformed_body_is_400(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST",
                "/graphs/fig1/evaluate",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "not valid JSON" in payload["message"]
        finally:
            conn.close()

    def test_empty_body_is_400(self, client):
        status, payload = client.request("POST", "/graphs/fig1/evaluate")
        assert status == 400
        assert "JSON object" in payload["message"]

    def test_non_object_body_is_400(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/graphs/fig1/evaluate", body="[1, 2]")
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON object" in json.loads(response.read())["message"]
        finally:
            conn.close()

    def test_register_needs_graph_or_preload(self, client):
        status, payload = client.post("/graphs", {"name": "x"})
        assert status == 400
        assert "preload" in payload["message"]
        status, payload = client.post("/graphs", {"graph": {}})
        assert status == 400
        assert "name" in payload["message"]
        status, payload = client.post(
            "/graphs", {"name": "x", "graph": {"bogus": True}}
        )
        assert status == 400


class TestConcurrency:
    def test_parallel_clients_during_update_burst(self, server):
        """Concurrent HTTP readers race updates; replies stay consistent.

        Every reply carries its epoch id; the batch toggles Bob and Walt
        together so any served epoch contains both or neither.
        """
        errors = []

        def read_loop():
            client = Client(server.address)
            try:
                for _ in range(10):
                    status, reply = client.post(
                        "/graphs/fig1/evaluate", {"pattern": PATTERN}
                    )
                    if status != 200:
                        errors.append(f"status {status}: {reply}")
                        continue
                    sa = set(reply["relation"]["sets"]["SA"]) & {"Bob", "Walt"}
                    if len(sa) == 1:
                        errors.append(
                            f"torn read at epoch {reply['epoch']}: {sorted(sa)}"
                        )
            finally:
                client.close()

        def write_loop():
            client = Client(server.address)
            try:
                for round_no in range(6):
                    experience = 1 if round_no % 2 == 0 else 7
                    status, _ = client.post(
                        "/graphs/fig1/update",
                        {
                            "updates": [
                                {
                                    "op": "set-attr",
                                    "node": "Bob",
                                    "attr": "experience",
                                    "value": experience,
                                },
                                {
                                    "op": "set-attr",
                                    "node": "Walt",
                                    "attr": "experience",
                                    "value": experience + 1,
                                },
                            ]
                        },
                    )
                    assert status == 200
            finally:
                client.close()

        threads = [threading.Thread(target=read_loop) for _ in range(3)]
        threads.append(threading.Thread(target=write_loop))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        # after the burst every pin has drained
        stats = server.service.registry.stats()
        assert stats["graphs"]["fig1"]["pins"] == 0
        assert stats["graphs"]["fig1"]["live_epochs"] == 1


class TestLifecycle:
    def test_close_is_idempotent(self):
        service = ExpFinderService(ServiceConfig(workers=1))
        server = QueryServer(service)
        server.start()
        server.close()
        server.close()
        service.close()

    def test_url_property(self, server):
        host, port = server.address
        assert server.url == f"http://{host}:{port}"
