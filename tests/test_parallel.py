"""Unit tests for the parallel evaluation subsystem (`engine.parallel`).

The exhaustive parallel-vs-sequential equivalence lives in
tests/test_differential.py; this module covers the machinery itself:
worker validation, pool lifecycle, stats, engine routing, and the facade.
"""

from __future__ import annotations

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.parallel import ParallelExecutor, validate_workers
from repro.errors import EvaluationError
from repro.expfinder import ExpFinder
from repro.matching.bounded import BoundedState, match_bounded
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder


class TestValidateWorkers:
    def test_none_means_sequential(self):
        assert validate_workers(None) == 1

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_positive_integers_pass_through(self, workers):
        assert validate_workers(workers) == workers

    @pytest.mark.parametrize("workers", [0, -1, -10, 1.5, "2", True, False])
    def test_everything_else_raises(self, workers):
        with pytest.raises(EvaluationError, match="positive integer"):
            validate_workers(workers)


class TestExecutor:
    def test_match_parity_and_stats(self, fig1, fig1_query):
        sequential = match_bounded(fig1, fig1_query)
        with ParallelExecutor(workers=2) as executor:
            parallel = executor.match(fig1, fig1_query)
        assert parallel.relation == sequential.relation
        info = parallel.stats["parallel"]
        assert info["mode"] == "sharded-query"
        assert info["workers"] == 2
        assert info["shards"] == 2
        assert parallel.stats["algorithm"] == "bounded-simulation"
        assert parallel.stats["candidate_source"] == "scan"

    def test_result_carries_state(self, fig1, fig1_query):
        with ParallelExecutor(workers=2) as executor:
            result = executor.match(fig1, fig1_query)
        assert isinstance(result._state, BoundedState)
        result._state.check_invariants()
        assert result.result_graph().num_nodes > 0

    def test_single_worker_runs_inline(self, fig1, fig1_query):
        executor = ParallelExecutor(workers=1)
        result = executor.match(fig1, fig1_query)
        assert executor._pool is None  # no processes were forked
        assert result.relation == match_bounded(fig1, fig1_query).relation

    @pytest.fixture
    def selective_case(self):
        """A graph whose candidate balls cover a small fraction of it.

        Two tiny chains match; a sea of filler nodes does not, so the
        decomposition ships induced ball subgraphs instead of sharing the
        whole graph.
        """
        from repro.graph.digraph import Graph

        graph = Graph(name="selective")
        for index in range(40):
            graph.add_node(f"filler{index}", label="F")
        for which in ("1", "2"):
            graph.add_node(f"s{which}", label="S")
            graph.add_node(f"t{which}", label="T")
            graph.add_edge(f"s{which}", f"t{which}")
        pattern = (
            PatternBuilder("chain")
            .node("S", 'label == "S"')
            .node("T", 'label == "T"')
            .edge("S", "T", 1)
            .build()
        )
        return graph, pattern

    def test_selective_balls_ship_subgraphs(self, selective_case):
        graph, pattern = selective_case
        with ParallelExecutor(workers=2) as executor:
            result = executor.match(graph, pattern)
        assert result.stats["parallel"]["shipping"] == "ball-subgraphs"
        assert sorted(result.relation.matches_of("S")) == ["s1", "s2"]

    def test_broad_balls_share_the_graph(self, fig1, fig1_query):
        with ParallelExecutor(workers=2) as executor:
            result = executor.match(fig1, fig1_query)
        assert result.stats["parallel"]["shipping"] == "shared-graph"

    def test_close_is_idempotent(self, selective_case):
        graph, pattern = selective_case
        executor = ParallelExecutor(workers=2)
        executor.match(graph, pattern)
        assert executor._pool is not None
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_pool_reused_across_matches(self, selective_case):
        graph, pattern = selective_case
        with ParallelExecutor(workers=2) as executor:
            executor.match(graph, pattern)
            pool = executor._pool
            executor.match(graph, pattern)
            assert executor._pool is pool

    def test_bad_workers_rejected_at_construction(self):
        with pytest.raises(EvaluationError, match="positive integer"):
            ParallelExecutor(workers=0)

    def test_num_shards_override(self, fig1, fig1_query):
        with ParallelExecutor(workers=2) as executor:
            result = executor.match(fig1, fig1_query, num_shards=4)
        assert result.stats["parallel"]["shards"] == 4
        assert result.relation == match_bounded(fig1, fig1_query).relation

    def test_match_many_parity(self, fig1, fig1_query):
        from repro.graph.index import predicate_key

        candidates = simulation_candidates(fig1, fig1_query)
        keys = {
            u: predicate_key(fig1_query.predicate(u)) for u in fig1_query.nodes()
        }
        table = {keys[u]: candidates[u] for u in fig1_query.nodes()}
        tasks = [(fig1_query, keys)] * 3
        with ParallelExecutor(workers=2) as executor:
            outcomes = executor.match_many(fig1, tasks, table)
        expected = match_bounded(fig1, fig1_query).relation
        assert [relation for relation, _stats in outcomes] == [expected] * 3
        assert all(stats["algorithm"] == "bounded-simulation" for _r, stats in outcomes)

    def test_match_many_empty(self, fig1):
        with ParallelExecutor(workers=2) as executor:
            assert executor.match_many(fig1, [], {}) == []

    def test_simulation_pattern_same_relation(self, diamond):
        pattern = (
            PatternBuilder("path")
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .edge("A", "B", 1)
            .build()
        )
        from repro.matching.simulation import match_simulation

        with ParallelExecutor(workers=2) as executor:
            result = executor.match(diamond, pattern)
        assert result.relation == match_simulation(diamond, pattern).relation
        assert result.stats["algorithm"] == "simulation"


class TestEngineWorkers:
    @pytest.fixture
    def engine(self, fig1):
        engine = QueryEngine()
        engine.register_graph("fig1", fig1)
        return engine

    def test_direct_route_parity(self, engine, fig1_query):
        sequential = engine.evaluate(
            "fig1", fig1_query, use_cache=False, cache_result=False
        )
        parallel = engine.evaluate(
            "fig1", fig1_query, use_cache=False, cache_result=False, workers=2
        )
        assert parallel.relation == sequential.relation
        assert parallel.stats["route"] == "direct"
        assert parallel.stats["parallel"]["workers"] == 2

    def test_parallel_result_is_cached(self, engine, fig1_query):
        engine.evaluate("fig1", fig1_query, workers=2)
        again = engine.evaluate("fig1", fig1_query, workers=2)
        assert again.stats["route"] == "cache"
        assert "parallel" not in again.stats

    def test_unknown_graph_still_names_registered_graphs(self, engine, fig1_query):
        with pytest.raises(EvaluationError, match="registered: fig1"):
            engine.evaluate("nope", fig1_query, workers=2)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_bad_workers_raise_before_evaluating(self, engine, fig1_query, workers):
        with pytest.raises(EvaluationError, match="positive integer"):
            engine.evaluate("fig1", fig1_query, workers=workers)
        with pytest.raises(EvaluationError, match="positive integer"):
            engine.evaluate_many("fig1", [fig1_query], workers=workers)

    def test_compressed_route_ignores_workers(self, engine, fig1_query):
        engine.compress_graph("fig1", ["field", "specialty", "experience"])
        result = engine.evaluate(
            "fig1", fig1_query, use_cache=False, cache_result=False, workers=2
        )
        assert result.stats["route"] == "compressed"
        sequential = engine.evaluate(
            "fig1",
            fig1_query,
            use_cache=False,
            use_compression=False,
            cache_result=False,
        )
        assert result.relation == sequential.relation

    def test_batch_workers_parity_and_dedup(self, engine, fig1_query):
        patterns = [fig1_query, fig1_query, fig1_query]
        results = engine.evaluate_many(
            "fig1", patterns, use_cache=False, cache_result=False, workers=2
        )
        expected = match_bounded(engine.graph("fig1"), fig1_query).relation
        assert [r.relation for r in results] == [expected] * 3
        # Only the first occurrence is farmed; repeats are batch-local reuse.
        assert results[0].stats["route"] == "direct"
        assert results[1].stats["route"] == "cache"
        assert results[0].stats["batch"]["workers"] == 2

    def test_single_query_batch_uses_sharded_parallelism(self, engine, fig1_query):
        results = engine.evaluate_many(
            "fig1", [fig1_query], use_cache=False, cache_result=False, workers=2
        )
        assert results[0].stats["parallel"]["mode"] == "sharded-query"
        # The evaluate_many contract holds on the delegated path too: every
        # result carries batch stats (the CLI reads them unconditionally).
        batch_info = results[0].stats["batch"]
        assert batch_info["size"] == 1
        assert batch_info["workers"] == 2
        assert batch_info["distinct_predicates"] == 4

    def test_engine_reuses_one_executor_per_worker_count(self, engine, fig1_query):
        engine.evaluate("fig1", fig1_query, use_cache=False, cache_result=False,
                        workers=2)
        first = engine._executors[2]
        engine.evaluate("fig1", fig1_query, use_cache=False, cache_result=False,
                        workers=2)
        assert engine._executors[2] is first
        engine.close()
        assert engine._executors == {}
        engine.close()  # idempotent
        # ...and the engine keeps working after close()
        result = engine.evaluate(
            "fig1", fig1_query, use_cache=False, cache_result=False, workers=2
        )
        assert result.is_match

    def test_farmed_result_graph_recomputes(self, engine, fig1_query):
        second = (
            PatternBuilder("pair")
            .node("SA", 'field == "SA"', output=True)
            .node("SD", 'field == "SD"')
            .edge("SA", "SD", 2)
            .build()
        )
        results = engine.evaluate_many(
            "fig1",
            [fig1_query, second],
            use_cache=False,
            cache_result=False,
            workers=2,
        )
        for result in results:
            assert result._state is None  # relations crossed a process border
            assert result.result_graph().num_nodes > 0


class TestFacadeWorkers:
    def test_match_and_match_many(self, fig1, fig1_query):
        finder = ExpFinder()
        finder.add_graph("g", fig1)
        sequential = finder.match("g", fig1_query, use_cache=False, cache_result=False)
        parallel = finder.match(
            "g", fig1_query, use_cache=False, cache_result=False, workers=2
        )
        assert parallel.relation == sequential.relation
        many = finder.match_many(
            "g", [fig1_query, fig1_query], use_cache=False, cache_result=False,
            workers=2,
        )
        assert [r.relation for r in many] == [sequential.relation] * 2


class TestPoolChurn:
    """Guarded calls without a wall-clock limit must reuse the persistent
    pool — pool construction stays off the steady-state serving path."""

    @pytest.fixture
    def selective_case(self):
        from repro.graph.digraph import Graph

        graph = Graph(name="selective")
        for index in range(40):
            graph.add_node(f"filler{index}", label="F")
        for which in ("1", "2"):
            graph.add_node(f"s{which}", label="S")
            graph.add_node(f"t{which}", label="T")
            graph.add_edge(f"s{which}", f"t{which}")
        pattern = (
            PatternBuilder("chain")
            .node("S", 'label == "S"')
            .node("T", 'label == "T"')
            .edge("S", "T", 1)
            .build()
        )
        return graph, pattern

    def test_node_budget_calls_share_one_pool(self, selective_case):
        from repro.engine.estimator import QueryBudget

        graph, pattern = selective_case
        budget = QueryBudget(node_visits=100_000, allow_partial=True)
        sequential = match_bounded(graph, pattern, budget=budget)
        with ParallelExecutor(workers=2) as executor:
            for _ in range(3):
                result = executor.match(graph, pattern, budget=budget)
                assert result.relation == sequential.relation
                assert not result.stats["partial"]
                assert result.stats["visits"] > 0
            # The regression this guards: three guarded calls used to fork
            # three dedicated pools; now they share the persistent one.
            assert executor.pools_created == 1

    def test_time_limited_calls_use_dedicated_pools(self, selective_case):
        from repro.engine.estimator import QueryBudget

        graph, pattern = selective_case
        timed = QueryBudget(node_visits=100_000, seconds=30.0, allow_partial=True)
        with ParallelExecutor(workers=2) as executor:
            executor.match(graph, pattern, budget=timed)
            first = executor.pools_created
            executor.match(graph, pattern, budget=timed)
            # A wall-clock limit may need mid-flight termination, which
            # would destroy a shared pool — each call pays its own.
            assert executor.pools_created == first + 1

    def test_persistent_pool_survives_guarded_use(self, selective_case):
        from repro.engine.estimator import QueryBudget

        graph, pattern = selective_case
        budget = QueryBudget(node_visits=100_000, allow_partial=True)
        with ParallelExecutor(workers=2) as executor:
            executor.match(graph, pattern)  # unguarded sharded call
            pool = executor._pool
            executor.match(graph, pattern, budget=budget)
            assert executor._pool is pool
            executor.match(graph, pattern)
            assert executor._pool is pool

    def test_warm_builds_pool_before_first_call(self, selective_case):
        graph, pattern = selective_case
        with ParallelExecutor(workers=2) as executor:
            assert executor._pool is None
            executor.warm()
            assert executor._pool is not None
            assert executor.pools_created == 1
            executor.match(graph, pattern)
            assert executor.pools_created == 1
        # workers=1 has nothing to warm (inline evaluation)
        inline = ParallelExecutor(workers=1).warm()
        assert inline._pool is None

    def test_blown_budget_raises_from_persistent_pool(self, selective_case):
        from repro.engine.estimator import QueryBudget
        from repro.errors import BudgetExceededError

        graph, pattern = selective_case
        strict = QueryBudget(node_visits=1, allow_partial=False)
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(BudgetExceededError):
                executor.match(graph, pattern, budget=strict)
            # ...and the pool remains usable afterwards
            result = executor.match(graph, pattern)
            assert sorted(result.relation.matches_of("S")) == ["s1", "s2"]

    def test_partial_degrades_on_persistent_pool(self, selective_case):
        from repro.engine.estimator import QueryBudget

        graph, pattern = selective_case
        tiny = QueryBudget(node_visits=1, allow_partial=True)
        with ParallelExecutor(workers=2) as executor:
            result = executor.match(graph, pattern, budget=tiny)
        assert result.stats["partial"]
        assert result.stats["guard"]

    def test_guarded_worker_entry_inline(self, selective_case):
        """Drive the persistent-pool worker function in-process.

        The real pool runs it in forked children (invisible to coverage);
        calling it inline proves the task tuple round-trips: shipped
        snapshot resolution, guard construction around the installed
        counter, and the shard kernel.
        """
        import multiprocessing

        from repro.engine import parallel as par
        from repro.engine.estimator import QueryBudget
        from repro.graph.frozen import FrozenGraph
        from repro.matching.simulation import simulation_candidates

        graph, pattern = selective_case
        frozen = FrozenGraph.freeze(graph)
        candidates = simulation_candidates(graph, pattern)
        from repro.graph.partition import decompose as ball_decompose

        shards = ball_decompose(graph, pattern, candidates, 2, frozen=frozen)
        payload = ParallelExecutor._shard_payload(
            frozen, pattern, shards[0], candidates, True, None
        )
        counter = multiprocessing.get_context().Value("q", 0)
        par._init_persistent_worker(counter)
        try:
            budget = QueryBudget(node_visits=100_000, allow_partial=True)
            rows, info = par._shard_rows_guarded(
                (payload, frozen.without_attrs(), None, budget)
            )
            assert counter.value > 0
            assert info["visits"] == counter.value
            assert rows
        finally:
            par._init_persistent_worker(None)

    def test_load_memo_bounded(self, tmp_path):
        """Worker-side snapshot memo caps its slots instead of growing."""
        from repro.engine import parallel as par
        from repro.engine.storage import write_frozen_file
        from repro.graph.digraph import Graph
        from repro.graph.frozen import FrozenGraph

        graph = Graph(name="memo")
        graph.add_node("a", label="A")
        frozen = FrozenGraph.freeze(graph)
        paths = []
        for index in range(par._PERSISTENT_LOAD_SLOTS + 1):
            path = tmp_path / f"m{index}.frozen.snap"
            write_frozen_file(path, frozen)
            paths.append(path)
        par._persistent_loads.clear()
        try:
            for path in paths:
                resolved, _ = par._resolve_persistent(path, None)
                assert resolved.num_nodes == 1
            assert len(par._persistent_loads) <= par._PERSISTENT_LOAD_SLOTS
            # A memo hit returns the same object, no reload
            again, _ = par._resolve_persistent(paths[-1], None)
            assert again is resolved
        finally:
            par._persistent_loads.clear()
