"""Unit tests for incremental bounded simulation."""

import pytest

from repro.errors import UpdateError
from repro.graph.generators import random_digraph
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.updates import EdgeDeletion, EdgeInsertion, random_updates
from repro.matching.bounded import match_bounded
from repro.matching.reference import naive_bounded
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


def bounded_ab(bound=2):
    return (
        PatternBuilder()
        .node("A", 'label == "A"')
        .node("B", 'label == "B"')
        .edge("A", "B", bound)
        .build()
    )


class TestInsertion:
    def test_distance_shortening_creates_match(self):
        # a -> m1 -> m2 -> b is length 3 > bound 2; adding a -> m2 fixes it.
        g = make_labelled_graph(
            [("a", "m1"), ("m1", "m2"), ("m2", "b")],
            {"a": "A", "m1": "M", "m2": "M", "b": "B"},
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("a", "m2"))
        assert inc.relation().num_pairs == 2
        inc.state.check_invariants()

    def test_insertion_updates_stored_distance(self):
        g = make_labelled_graph(
            [("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        assert inc.state.S[("A", "B")]["a"]["b"] == 2
        inc.apply(EdgeInsertion("a", "b"))
        assert inc.state.S[("A", "B")]["a"]["b"] == 1
        inc.state.check_invariants()

    def test_mutual_resurrection_cyclic_bounded_pattern(self):
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .edge("A", "B", 2)
            .edge("B", "A", 2)
            .build()
        )
        g = make_labelled_graph(
            [("b", "m2"), ("m2", "a")], {"a": "A", "b": "B", "m1": "M", "m2": "M"}
        )
        inc = IncrementalBoundedSimulation(g, q)
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("a", "m1"))
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("m1", "b"))  # closes a->m1->b->m2->a
        assert inc.relation().num_pairs == 2
        inc.state.check_invariants()

    def test_far_away_insertion_changes_nothing(self):
        g = make_labelled_graph(
            [("a", "b"), ("x", "y")], {"a": "A", "b": "B", "x": "M", "y": "M"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        before = inc.relation()
        inc.apply(EdgeInsertion("y", "x"))
        assert inc.relation() == before
        inc.state.check_invariants()


class TestDeletion:
    def test_deletion_breaks_unique_path(self):
        g = make_labelled_graph(
            [("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        assert inc.relation().num_pairs == 2
        inc.apply(EdgeDeletion("m", "b"))
        assert inc.relation().is_empty
        inc.state.check_invariants()

    def test_deletion_with_alternate_path_updates_distance(self):
        g = make_labelled_graph(
            [("a", "b"), ("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        inc.apply(EdgeDeletion("a", "b"))
        assert inc.relation().num_pairs == 2  # still reaches within 2
        assert inc.state.S[("A", "B")]["a"]["b"] == 2
        inc.state.check_invariants()

    def test_deletion_cascades_through_pattern(self):
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .node("C", 'label == "C"')
            .edge("A", "B", 2)
            .edge("B", "C", 2)
            .build()
        )
        g = make_labelled_graph(
            [("a", "b"), ("b", "m"), ("m", "c")],
            {"a": "A", "b": "B", "m": "M", "c": "C"},
        )
        inc = IncrementalBoundedSimulation(g, q)
        assert inc.relation().num_pairs == 3
        inc.apply(EdgeDeletion("m", "c"))
        assert inc.relation().is_empty
        inc.state.check_invariants()


class TestUnboundedEdges:
    def test_unbounded_pattern_edge_maintained(self):
        q = bounded_ab(None)
        g = make_labelled_graph(
            [("a", "m1"), ("m1", "m2")], {"a": "A", "m1": "M", "m2": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, q)
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("m2", "b"))
        assert inc.relation().num_pairs == 2
        inc.apply(EdgeDeletion("m1", "m2"))
        assert inc.relation().is_empty
        inc.state.check_invariants()


class TestStateReuse:
    def test_accepts_existing_state(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        result = match_bounded(g, bounded_ab(2))
        inc = IncrementalBoundedSimulation(g, result.pattern, state=result._state)
        assert inc.relation() == result.relation

    def test_rejects_foreign_state(self):
        g1 = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        g2 = g1.copy()
        result = match_bounded(g1, bounded_ab(2))
        with pytest.raises(UpdateError, match="different graph"):
            IncrementalBoundedSimulation(g2, result.pattern, state=result._state)

    def test_edgeless_pattern_is_static(self):
        q = PatternBuilder().node("A", 'label == "A"').build()
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        inc = IncrementalBoundedSimulation(g, q)
        inc.apply(EdgeInsertion("a", "b"))
        assert inc.relation().matches_of("A") == {"a"}


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_naive_after_random_updates(self, seed):
        g = random_digraph(14, 32, num_labels=3, seed=seed)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .node("C", 'label == "L2"')
            .edge("A", "B", 2)
            .edge("B", "C", 3)
            .edge("C", "A", 2)
            .build()
        )
        inc = IncrementalBoundedSimulation(g, q)
        for update in random_updates(g, 20, seed=seed + 500):
            inc.apply(update)
            assert inc.relation() == naive_bounded(g, q), update
        inc.state.check_invariants()

    @pytest.mark.parametrize("seed", range(4))
    def test_unbounded_pattern_against_oracle(self, seed):
        g = random_digraph(10, 18, num_labels=2, seed=seed)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", None)
            .build()
        )
        inc = IncrementalBoundedSimulation(g, q)
        for update in random_updates(g, 15, seed=seed + 900):
            inc.apply(update)
            assert inc.relation() == naive_bounded(g, q), update
        inc.state.check_invariants()

    def test_batch_equals_recompute_on_paper_graph(self, fig1, fig1_query):
        inc = IncrementalBoundedSimulation(fig1, fig1_query)
        batch = random_updates(fig1, 8, seed=77)
        inc.apply_batch(batch)
        assert inc.relation() == match_bounded(fig1, fig1_query).relation
