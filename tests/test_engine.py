"""Unit tests for the assembled query engine."""

import pytest

from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
from repro.engine.engine import QueryEngine
from repro.engine.storage import GraphStore
from repro.errors import CompressionError, EvaluationError
from repro.graph.generators import collaboration_graph, random_digraph
from repro.incremental.updates import EdgeInsertion, random_updates
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder


@pytest.fixture
def engine() -> QueryEngine:
    e = QueryEngine()
    e.register_graph("fig1", paper_graph())
    return e


def label_pattern(bound=2, label_attr="field"):
    return (
        PatternBuilder()
        .node("SA", f'{label_attr} == "SA"', output=True)
        .node("SD", f'{label_attr} == "SD"')
        .edge("SA", "SD", bound)
        .build(require_output=True)
    )


class TestGraphManagement:
    def test_register_and_fetch(self, engine):
        assert engine.graph("fig1").num_nodes == 9
        assert engine.graphs() == ["fig1"]

    def test_double_register_raises(self, engine):
        with pytest.raises(EvaluationError, match="already registered"):
            engine.register_graph("fig1", paper_graph())

    def test_replace_allowed(self, engine):
        engine.register_graph("fig1", paper_graph(include_e1=True), replace=True)
        assert engine.graph("fig1").has_edge("Fred", "Eva")

    def test_unknown_graph_raises(self, engine):
        with pytest.raises(EvaluationError, match="unknown graph"):
            engine.graph("nope")

    def test_store_load_and_persist(self, tmp_path):
        store = GraphStore(tmp_path)
        store.save_graph("fig1", paper_graph())
        engine = QueryEngine(store=store)
        graph = engine.load_graph("fig1")
        assert graph.num_nodes == 9
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        engine.persist_graph("fig1")
        assert store.load_graph("fig1").has_edge("Fred", "Eva")

    def test_no_store_errors(self):
        engine = QueryEngine()
        with pytest.raises(EvaluationError, match="no file store"):
            engine.load_graph("x")


class TestEvaluationRoutes:
    def test_direct_evaluation(self, engine):
        result = engine.evaluate("fig1", paper_pattern())
        assert result.stats["route"] == "direct"
        assert result.stats["algorithm"] == "bounded-simulation"
        assert sorted(result.relation.matches_of("SA")) == ["Bob", "Walt"]

    def test_cache_route_on_second_evaluation(self, engine):
        first = engine.evaluate("fig1", paper_pattern())
        second = engine.evaluate("fig1", paper_pattern())
        assert second.stats["route"] == "cache"
        assert second.relation == first.relation

    def test_use_cache_false_bypasses(self, engine):
        engine.evaluate("fig1", paper_pattern())
        result = engine.evaluate("fig1", paper_pattern(), use_cache=False)
        assert result.stats["route"] == "direct"

    def test_simulation_algorithm_for_unit_pattern(self, engine):
        result = engine.evaluate("fig1", label_pattern(bound=1))
        assert result.stats["algorithm"] == "simulation"

    def test_compressed_route(self):
        engine = QueryEngine()
        graph = collaboration_graph(120, seed=3)
        engine.register_graph("team", graph)
        engine.compress_graph("team", attrs=("field",))
        pattern = label_pattern(bound=2)
        result = engine.evaluate("team", pattern)
        assert result.stats["route"] == "compressed"
        direct = engine.evaluate("team", pattern, use_compression=False,
                                 use_cache=False)
        assert result.relation == direct.relation

    def test_incompatible_pattern_falls_back_to_direct(self):
        engine = QueryEngine()
        engine.register_graph("team", collaboration_graph(60, seed=4))
        engine.compress_graph("team", attrs=("field",))
        pattern = (
            PatternBuilder()
            .node("SA", 'field == "SA", experience >= 5', output=True)
            .build(require_output=True)
        )
        result = engine.evaluate("team", pattern)
        assert result.stats["route"] == "direct"

    def test_explain_matches_execution(self, engine):
        plan = engine.explain("fig1", paper_pattern())
        result = engine.evaluate("fig1", paper_pattern())
        assert plan.route == result.stats["route"] == "direct"
        plan_after = engine.explain("fig1", paper_pattern())
        assert plan_after.route == "cache"

    def test_compressed_route_equals_direct_on_random_graphs(self):
        for seed in range(3):
            engine = QueryEngine()
            graph = random_digraph(40, 90, num_labels=2, seed=seed)
            engine.register_graph("g", graph)
            engine.compress_graph("g", attrs=("label",))
            pattern = (
                PatternBuilder()
                .node("A", 'label == "L0"')
                .node("B", 'label == "L1"')
                .edge("A", "B", 2)
                .build()
            )
            via_compressed = engine.evaluate("g", pattern, cache_result=False)
            direct = match_bounded(graph, pattern)
            assert via_compressed.stats["route"] == "compressed"
            assert via_compressed.relation == direct.relation


class TestOutOfBandStaleness:
    """QueryCache reads validate Graph.version: a mutation that bypasses
    ``update_graph`` (any direct write through the counting graph APIs)
    must never let the engine serve a stale cached relation."""

    def test_direct_mutation_invalidates_cached_result(self, engine):
        engine.evaluate("fig1", paper_pattern())
        # Write to the live graph directly, bypassing engine.update_graph:
        # the version counter moves, so the cached relation is stale.
        engine.graph("fig1").add_edge(*EDGE_E1)
        second = engine.evaluate("fig1", paper_pattern())
        assert second.stats["route"] == "direct"  # recomputed, not cached
        assert engine.cache_stats()["stale_drops"] == 1
        # The recomputed answer reflects the mutated graph (inserting e1
        # promotes Bob's SA sponsorship per the paper's Example 5).
        reference = engine.evaluate(
            "fig1", paper_pattern(), use_cache=False, cache_result=False
        )
        assert second.relation == reference.relation

    def test_explain_agrees_after_out_of_band_mutation(self, engine):
        engine.evaluate("fig1", paper_pattern())
        assert engine.explain("fig1", paper_pattern()).route == "cache"
        engine.graph("fig1").add_edge(*EDGE_E1)
        # explain() consults the same version-aware check evaluate() uses,
        # so it must not promise a cache route evaluate() would miss.
        assert engine.explain("fig1", paper_pattern()).route == "direct"

    def test_attribute_write_invalidates_cached_result(self, engine):
        engine.evaluate("fig1", paper_pattern())
        engine.graph("fig1").set("Bob", "field", "BIO")
        second = engine.evaluate("fig1", paper_pattern())
        assert second.stats["route"] == "direct"
        assert "Bob" not in second.relation.matches_of("SA")


class TestCompressionManagement:
    def test_maintained_requires_bisimulation(self, engine):
        with pytest.raises(CompressionError, match="bisimulation"):
            engine.compress_graph("fig1", attrs=("field",), method="simulation")

    def test_static_simulation_compression_allowed(self, engine):
        compressed = engine.compress_graph(
            "fig1", attrs=("field",), method="simulation", maintained=False
        )
        assert compressed.quotient.num_nodes <= 9

    def test_drop_compression(self, engine):
        engine.compress_graph("fig1", attrs=("field",))
        engine.drop_compression("fig1")
        assert engine.explain("fig1", label_pattern()).route == "direct"

    def test_static_compression_invalidated_by_update(self, engine):
        engine.compress_graph("fig1", attrs=("field",), maintained=False)
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        assert engine.explain("fig1", label_pattern()).route == "direct"

    def test_maintained_compression_survives_update(self, engine):
        engine.compress_graph("fig1", attrs=("field",))
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        plan = engine.explain("fig1", label_pattern())
        assert plan.route == "compressed"


class TestUpdatesAndPinning:
    def test_update_invalidates_unpinned_cache(self, engine):
        engine.evaluate("fig1", paper_pattern())
        summary = engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        assert summary["invalidated_cache_entries"] == 1
        result = engine.evaluate("fig1", paper_pattern())
        assert result.stats["route"] == "direct"
        assert "Fred" in result.relation.matches_of("SD")

    def test_pinned_query_maintained_incrementally(self, engine):
        engine.pin("fig1", paper_pattern())
        summary = engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        delta = summary["pinned_deltas"][paper_pattern().canonical_key()]
        assert delta["added"] == {("SD", "Fred")}
        assert delta["removed"] == set()
        # The refreshed result is served from cache.
        result = engine.evaluate("fig1", paper_pattern())
        assert result.stats["route"] == "cache"
        assert "Fred" in result.relation.matches_of("SD")

    def test_pin_simulation_pattern_uses_simulation_maintainer(self, engine):
        pattern = label_pattern(bound=1)
        engine.pin("fig1", pattern)
        summary = engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        assert pattern.canonical_key() in summary["pinned_deltas"]

    def test_pin_twice_is_idempotent(self, engine):
        engine.pin("fig1", paper_pattern())
        engine.pin("fig1", paper_pattern())
        assert engine.cache_stats()["pinned"] == 1

    def test_unpin(self, engine):
        engine.pin("fig1", paper_pattern())
        engine.unpin("fig1", paper_pattern())
        assert engine.cache_stats()["pinned"] == 0

    def test_version_bumps_per_batch(self, engine):
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        result = engine.evaluate("fig1", paper_pattern())
        assert result.stats["graph_version"] == 1

    def test_pinned_query_agrees_with_recompute_under_random_updates(self):
        engine = QueryEngine()
        graph = collaboration_graph(150, seed=8)
        engine.register_graph("net", graph)
        pattern = label_pattern(bound=2)
        engine.pin("net", pattern)
        engine.compress_graph("net", attrs=("field",))
        for round_seed in range(3):
            batch = random_updates(graph, 10, seed=round_seed)
            engine.update_graph("net", batch)
            cached = engine.evaluate("net", pattern)
            assert cached.stats["route"] == "cache"
            recomputed = match_bounded(graph, pattern)
            assert cached.relation == recomputed.relation


class TestTopK:
    def test_top_k_default_metric(self, engine):
        ranked = engine.top_k("fig1", paper_pattern(), 2)
        assert [match.node for match in ranked] == ["Bob", "Walt"]

    def test_top_k_alternative_metric(self, engine):
        scored = engine.top_k("fig1", paper_pattern(), 2, metric="degree")
        assert scored[0][0] == "Bob"

    def test_top_k_requires_output_node(self, engine):
        pattern = PatternBuilder().node("A", 'field == "SA"').build()
        with pytest.raises(Exception):
            engine.top_k("fig1", pattern, 1)

    def test_top_k_metric_object(self, engine):
        from repro.ranking.metrics import HarmonicMetric

        scored = engine.top_k("fig1", paper_pattern(), 1, metric=HarmonicMetric())
        assert scored[0][0] == "Bob"


class TestOracleManagement:
    """enable_oracle / oracle_stats / invalidation-vs-survival semantics."""

    def test_disabled_by_default(self, engine):
        assert engine.oracle_stats("fig1") is None
        result = engine.evaluate("fig1", paper_pattern())
        assert engine.oracle_cache_stats()["builds"] == 0
        assert result.is_match

    def test_enable_builds_lazily_and_warms(self, engine):
        engine.enable_oracle("fig1")
        assert engine.oracle_stats("fig1")["state"] == "cold"
        first = engine.evaluate("fig1", paper_pattern(), use_cache=False,
                                cache_result=False)
        stats = engine.oracle_stats("fig1")
        assert stats["state"] == "warm"
        assert stats["nodes"] == paper_graph().num_nodes
        assert engine.oracle_cache_stats()["builds"] == 1
        second = engine.evaluate("fig1", paper_pattern(), use_cache=False,
                                 cache_result=False)
        assert engine.oracle_cache_stats()["builds"] == 1  # reused
        assert second.relation == first.relation
        plain = QueryEngine()
        plain.register_graph("fig1", paper_graph())
        reference = plain.evaluate("fig1", paper_pattern())
        assert first.relation == reference.relation
        assert first.relation.to_dict() == reference.relation.to_dict()

    def test_disable_drops_the_cached_labels(self, engine):
        engine.enable_oracle("fig1")
        engine.evaluate("fig1", paper_pattern(), use_cache=False,
                        cache_result=False)
        engine.disable_oracle("fig1")
        assert engine.oracle_stats("fig1") is None
        assert engine.oracle_cache_stats()["invalidations"] >= 1

    def test_reconfigure_invalidates(self, engine):
        engine.enable_oracle("fig1")
        engine.evaluate("fig1", paper_pattern(), use_cache=False,
                        cache_result=False)
        engine.enable_oracle("fig1", cap=2)
        assert engine.oracle_stats("fig1") == {"state": "cold", "cap": 2, "top": None}
        engine.enable_oracle("fig1", cap=2)  # same config: no extra drop
        assert engine.oracle_stats("fig1")["state"] == "cold"

    def test_structural_update_invalidates(self, engine):
        engine.enable_oracle("fig1")
        engine.evaluate("fig1", paper_pattern(), use_cache=False,
                        cache_result=False)
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        assert engine.oracle_stats("fig1")["state"] == "cold"
        assert engine.oracle_cache_stats()["invalidations"] == 1
        # The next evaluation rebuilds against the post-update graph.
        result = engine.evaluate("fig1", paper_pattern(), use_cache=False,
                                 cache_result=False)
        assert engine.oracle_stats("fig1")["state"] == "warm"
        plain = QueryEngine()
        updated = paper_graph()
        updated.add_edge(*EDGE_E1)
        plain.register_graph("g", updated)
        assert result.relation == plain.evaluate("g", paper_pattern()).relation

    def test_distance_preserving_batch_survives(self, engine):
        from repro.incremental.updates import AttributeUpdate, NodeInsertion

        engine.enable_oracle("fig1")
        engine.evaluate("fig1", paper_pattern(), use_cache=False,
                        cache_result=False)
        engine.update_graph("fig1", [
            AttributeUpdate("Bob", "experience", 9),
            NodeInsertion.with_attrs("Newcomer", field="SA", experience=1),
        ])
        stats = engine.oracle_stats("fig1")
        assert stats["state"] == "warm"  # refreshed in place, no rebuild
        assert engine.oracle_cache_stats()["refreshes"] == 1
        assert engine.oracle_cache_stats()["builds"] == 1
        # And the surviving labels still answer correctly for the new graph.
        result = engine.evaluate("fig1", paper_pattern(), use_cache=False,
                                 cache_result=False)
        assert engine.oracle_cache_stats()["builds"] == 1
        plain = QueryEngine()
        plain.register_graph("g", engine.graph("fig1"))
        assert result.relation == plain.evaluate("g", paper_pattern()).relation

    def test_oracle_supersedes_reach_index(self, engine):
        engine.enable_reach_index("fig1", max_depth=4)
        engine.enable_oracle("fig1")
        result = engine.evaluate("fig1", paper_pattern(), use_cache=False,
                                 cache_result=False)
        # The frozen kernels ran (kernel log present); the reach index was
        # never consulted (no hits, no misses).
        assert "kernels" in result.stats
        reach_stats = engine.reach_index_stats("fig1")
        assert reach_stats["hits"] == 0 and reach_stats["misses"] == 0

    def test_explain_reports_oracle_state_and_edge_routes(self, engine):
        engine.enable_oracle("fig1")
        cold = engine.explain("fig1", paper_pattern())
        assert any("distance oracle: cold" in r for r in cold.reasons)
        assert cold.edge_routes  # every pattern edge has a route
        assert {route.edge for route in cold.edge_routes} == {
            (s, t) for s, t, _b in paper_pattern().edges()
        }
        engine.evaluate("fig1", paper_pattern(), use_cache=False,
                        cache_result=False)
        warm = engine.explain("fig1", paper_pattern())
        assert any("distance oracle: warm" in r for r in warm.reasons)
        assert "edge" in warm.explain()

    def test_explain_without_oracle_mentions_enablement(self, engine):
        plan = engine.explain("fig1", paper_pattern())
        assert any("distance oracle: disabled" in r for r in plan.reasons)

    def test_register_replace_drops_oracle(self, engine):
        engine.enable_oracle("fig1")
        engine.evaluate("fig1", paper_pattern(), use_cache=False,
                        cache_result=False)
        engine.register_graph("fig1", paper_graph(), replace=True)
        assert engine.oracle_cache_stats()["invalidations"] >= 1

    def test_unknown_graph_raises(self, engine):
        with pytest.raises(EvaluationError, match="unknown graph"):
            engine.enable_oracle("nope")
        with pytest.raises(EvaluationError, match="unknown graph"):
            engine.oracle_stats("nope")

    def test_batch_evaluation_uses_the_oracle(self, engine):
        engine.enable_oracle("fig1")
        results = engine.evaluate_many(
            "fig1", [paper_pattern(), label_pattern()], use_cache=False,
            cache_result=False,
        )
        assert engine.oracle_stats("fig1")["state"] == "warm"
        plain = QueryEngine()
        plain.register_graph("fig1", paper_graph())
        reference = plain.evaluate_many(
            "fig1", [paper_pattern(), label_pattern()], use_cache=False,
            cache_result=False,
        )
        for mine, theirs in zip(results, reference):
            assert mine.relation == theirs.relation

    def test_cache_stats_carry_oracle_counters(self, engine):
        stats = engine.cache_stats()
        assert "oracles" in stats and stats["oracles"]["size"] == 0

    def test_warm_oracle_builds_eagerly(self, engine):
        with pytest.raises(EvaluationError, match="not enabled"):
            engine.warm_oracle("fig1")
        engine.enable_oracle("fig1")
        stats = engine.warm_oracle("fig1")
        assert stats["state"] == "warm"
        assert engine.oracle_cache_stats()["builds"] == 1
        engine.warm_oracle("fig1")  # idempotent: cached labels reused
        assert engine.oracle_cache_stats()["builds"] == 1
