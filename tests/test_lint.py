"""repro-lint's own tests: rules against the fixture corpus, the
suppression grammar, the baseline round trip, and the CLI gate.

The fixture corpus lives in ``tests/lint_fixtures`` (excluded from the
repo-wide sweep by ``DEFAULT_EXCLUDED_DIRS``); every rule has one
deliberately-violating and one clean fixture, and the bad ones double as
the CI negative test proving the gate actually fails on seeded
violations.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source, rule_ids, select_rules
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.core import BAD_SUPPRESSION, PARSE_ERROR
from repro.errors import StorageError

HERE = Path(__file__).parent
FIXTURES = HERE / "lint_fixtures"
REPO_ROOT = HERE.parent
#: Lint fixtures on purpose (the default excludes would skip them).
FIXTURE_EXCLUDES = frozenset({"__pycache__"})

#: rule id -> (flagged fixture, clean fixture); path-scoped rules opt in
#: by mirroring the directory shape they scope on.
CORPUS = {
    "cache-version-guard": ("bad/cache_guard_bad.py", "good/cache_guard_good.py"),
    "frozen-immutability": ("bad/frozen_bad.py", "good/frozen_good.py"),
    "guard-threading": ("bad/guard_bad.py", "good/guard_good.py"),
    "spawn-safety": ("bad/spawn_bad.py", "good/spawn_good.py"),
    "determinism": (
        "bad/matching/determinism_bad.py",
        "good/matching/determinism_good.py",
    ),
    "version-bump-discipline": ("bad/version_bad.py", "good/version_good.py"),
    "error-wrapping": ("bad/engine/storage.py", "good/engine/storage.py"),
    "fault-point-registered": ("bad/faults_bad.py", "good/faults_good.py"),
}


def lint_fixture(relpath):
    return lint_paths([FIXTURES / relpath], excluded_dirs=FIXTURE_EXCLUDES)


class TestCorpus:
    def test_corpus_covers_every_rule(self):
        assert sorted(CORPUS) == rule_ids()

    @pytest.mark.parametrize("rule_id", sorted(CORPUS))
    def test_bad_fixture_flagged_by_exactly_its_rule(self, rule_id):
        bad, _good = CORPUS[rule_id]
        active = lint_fixture(bad).active
        assert active, f"{bad} produced no findings"
        assert {finding.rule for finding in active} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(CORPUS))
    def test_good_fixture_is_clean(self, rule_id):
        _bad, good = CORPUS[rule_id]
        result = lint_fixture(good)
        assert result.active == []

    def test_findings_carry_source_lines_and_positions(self):
        finding = lint_fixture(CORPUS["cache-version-guard"][0]).active[0]
        assert finding.line > 0
        assert "cache.get(key)" in finding.source_line


class TestSuppression:
    def test_justified_suppression_is_honored(self):
        result = lint_fixture("good/suppressed_ok.py")
        assert result.active == []
        assert len(result.suppressed) == 2  # trailing + standalone forms

    def test_empty_justification_is_flagged_and_does_not_silence(self):
        active = lint_fixture("bad/suppress_empty.py").active
        rules = sorted(finding.rule for finding in active)
        assert rules == [BAD_SUPPRESSION, "cache-version-guard"]

    def test_unknown_rule_in_directive_is_flagged(self):
        source = "x = 1  # repro-lint: disable=no-such-rule -- because\n"
        findings = lint_source(source)
        assert [f.rule for f in findings] == [BAD_SUPPRESSION]
        assert "no-such-rule" in findings[0].message

    def test_bad_suppression_cannot_be_suppressed(self):
        source = (
            "# repro-lint: disable=bad-suppression -- muting the auditor\n"
            "# repro-lint: disable=\n"
            "x = 1\n"
        )
        active = [f for f in lint_source(source) if f.active]
        assert [f.rule for f in active] == [BAD_SUPPRESSION]

    def test_directive_inside_a_string_is_inert(self):
        source = (
            'from repro.engine.cache import QueryCache\n'
            'cache = QueryCache(capacity=2)\n'
            'note = "# repro-lint: disable=cache-version-guard -- nope"\n'
            'entry = cache.peek(note)\n'
        )
        active = lint_source(source)
        assert [f.rule for f in active] == ["cache-version-guard"]
        assert not any(f.suppressed for f in active)

    def test_prose_mention_of_the_tool_is_not_a_directive(self):
        findings = lint_source("# repro-lint is documented in docs/\nx = 1\n")
        assert findings == []


class TestDriver:
    def test_parse_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert [f.rule for f in findings] == [PARSE_ERROR]

    def test_select_rules_unknown_id_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            select_rules(["no-such-rule"])

    def test_default_excludes_skip_the_fixture_corpus(self):
        result = lint_paths([FIXTURES])
        assert result.files_checked == 0

    def test_repo_sweep_is_clean(self):
        # The acceptance gate: zero unsuppressed findings over the tree.
        result = lint_paths(
            [REPO_ROOT / part for part in ("src", "benchmarks", "tests")]
        )
        assert result.active == [], [
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in result.active
        ]
        assert result.suppressed  # the justified exceptions are visible


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        first = lint_paths([FIXTURES / "bad"], excluded_dirs=FIXTURE_EXCLUDES)
        count = write_baseline(baseline_path, first.active)
        assert count == len(first.active)
        fingerprints = load_baseline(baseline_path)
        second = lint_paths(
            [FIXTURES / "bad"],
            excluded_dirs=FIXTURE_EXCLUDES,
            baseline_fingerprints=fingerprints,
        )
        assert second.ok
        assert len(second.baselined) == len(first.active)

    def test_fingerprint_survives_line_drift(self):
        violation = "entry = cache.peek(key)\n"
        prefix = "from repro.engine.cache import QueryCache\ncache = QueryCache()\n"
        shifted = prefix + "\n\n\n" + violation
        original = lint_source(prefix + violation, path="same.py")
        moved = lint_source(shifted, path="same.py")
        assert original[0].fingerprint() == moved[0].fingerprint()
        assert original[0].line != moved[0].line

    def test_malformed_baseline_raises_storage_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json at all")
        with pytest.raises(StorageError):
            load_baseline(bad)
        bad.write_text(json.dumps({"format_version": 99, "fingerprints": []}))
        with pytest.raises(StorageError, match="format"):
            load_baseline(bad)


class TestCliGate:
    """The command-line contract CI relies on."""

    def test_seeded_violations_fail_the_gate(self, capsys):
        # The negative test: the gate must exit 1 on the bad corpus and
        # report a finding from every rule, proving each one fires in CI.
        code = lint_main(
            ["--no-default-excludes", "--format", "json", str(FIXTURES / "bad")]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        flagged = {finding["rule"] for finding in report["findings"]}
        assert flagged >= set(rule_ids())
        assert BAD_SUPPRESSION in flagged

    def test_clean_corpus_passes_the_gate(self, capsys):
        code = lint_main(["--no-default-excludes", str(FIXTURES / "good")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out

    def test_unknown_rule_flag_is_usage_error(self, capsys):
        assert lint_main(["--rules", "no-such-rule", str(FIXTURES)]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main([str(FIXTURES / "does-not-exist")]) == 2

    def test_write_baseline_requires_baseline_flag(self, capsys):
        assert lint_main(["--write-baseline", str(FIXTURES / "good")]) == 2

    def test_write_then_enforce_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(FIXTURES / "bad" / "cache_guard_bad.py")
        assert (
            lint_main(
                [
                    "--no-default-excludes",
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                    target,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            lint_main(
                ["--no-default-excludes", "--baseline", str(baseline), target]
            )
            == 0
        )

    def test_expfinder_lint_subcommand_forwards(self, capsys):
        from repro.cli import main as expfinder_main

        assert expfinder_main(["lint", "--list-rules"]) == 0
        assert "cache-version-guard" in capsys.readouterr().out
