"""Tests for the bounded-reachability index and its engine integration."""

import pytest

from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
from repro.engine.engine import QueryEngine
from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.distance import bounded_descendants
from repro.graph.generators import collaboration_graph, random_digraph
from repro.graph.reach_index import BoundedReachIndex
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    decompose,
    random_updates,
)
from repro.matching.bounded import match_bounded


class TestIndexBasics:
    def test_served_results_equal_bfs(self):
        graph = collaboration_graph(100, seed=1)
        index = BoundedReachIndex(graph, max_depth=3)
        for node in list(graph.nodes())[:20]:
            for depth in (1, 2, 3):
                assert index.reach(node, depth) == bounded_descendants(
                    graph, node, depth
                )

    def test_hits_and_misses_counted(self):
        graph = collaboration_graph(30, seed=2)
        index = BoundedReachIndex(graph, max_depth=2)
        index.reach("p0", 2)
        index.reach("p0", 1)   # shallower depth is filtered from cache
        stats = index.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_depths_beyond_max_bypass_cache(self):
        graph = collaboration_graph(30, seed=3)
        index = BoundedReachIndex(graph, max_depth=2)
        assert not index.covers(3)
        assert not index.covers(None)
        result = index.reach("p0", None)
        assert result == bounded_descendants(graph, "p0", None)
        assert len(index) == 0  # nothing cached

    def test_returned_dicts_are_private_copies(self):
        graph = Graph.from_edges([("a", "b")])
        index = BoundedReachIndex(graph, max_depth=2)
        first = index.reach("a", 2)
        first["junk"] = 99
        assert "junk" not in index.reach("a", 2)

    def test_invalid_depth_raises(self):
        with pytest.raises(GraphError):
            BoundedReachIndex(Graph(), max_depth=0)


class TestInvalidation:
    def test_edge_insertion_invalidates_affected_area(self):
        # chain a -> b -> c; index depth 2; inserting c -> d must invalidate
        # ancestors of c within 1 hop (b) and c itself, but not a.
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        graph.add_node("d")
        index = BoundedReachIndex(graph, max_depth=2)
        for node in ("a", "b", "c"):
            index.reach(node, 2)
        EdgeInsertion("c", "d").apply(graph)
        dropped = index.on_update(EdgeInsertion("c", "d"))
        assert dropped == 2  # c and b
        # Fresh reads must now see d.
        assert "d" in index.reach("b", 2)
        assert index.reach("a", 2) == bounded_descendants(graph, "a", 2)

    def test_deletion_invalidates(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        index = BoundedReachIndex(graph, max_depth=2)
        index.reach("a", 2)
        EdgeDeletion("b", "c").apply(graph)
        index.on_update(EdgeDeletion("b", "c"))
        assert index.reach("a", 2) == {"b": 1}

    def test_attribute_updates_do_not_invalidate(self):
        graph = Graph.from_edges([("a", "b")])
        index = BoundedReachIndex(graph, max_depth=2)
        index.reach("a", 2)
        AttributeUpdate("a", "x", 1).apply(graph)
        assert index.on_update(AttributeUpdate("a", "x", 1)) == 0
        assert len(index) == 1

    def test_node_lifecycle(self):
        graph = Graph.from_edges([("a", "b")])
        index = BoundedReachIndex(graph, max_depth=2)
        index.reach("a", 2)
        NodeInsertion("c").apply(graph)
        assert index.on_update(NodeInsertion("c")) == 0
        for primitive in decompose(graph, NodeDeletion("a")):
            primitive.apply(graph)
            index.on_update(primitive)
        assert "a" not in graph
        assert len(index) == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_index_consistent_through_random_updates(self, seed):
        graph = random_digraph(20, 45, seed=seed)
        index = BoundedReachIndex(graph, max_depth=3)
        for node in graph.nodes():
            index.reach(node, 3)
        for update in random_updates(graph, 20, seed=seed + 10):
            update.apply(graph)
            index.on_update(update)
            # Spot-check a handful of nodes against fresh BFS.
            for node in list(graph.nodes())[::5]:
                assert index.reach(node, 3) == bounded_descendants(graph, node, 3), (
                    seed, update,
                )


class TestMatcherAndEngineIntegration:
    def test_match_bounded_with_index_is_identical(self):
        graph = collaboration_graph(200, seed=4)
        pattern = paper_pattern()
        index = BoundedReachIndex(graph, max_depth=3)
        with_index = match_bounded(graph, pattern, reach_index=index)
        without = match_bounded(graph, pattern)
        assert with_index.relation == without.relation

    def test_engine_roundtrip_with_index_and_updates(self):
        engine = QueryEngine()
        graph = paper_graph()
        engine.register_graph("fig1", graph)
        engine.enable_reach_index("fig1", max_depth=3)
        pattern = paper_pattern()
        first = engine.evaluate("fig1", pattern, cache_result=False)
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        second = engine.evaluate("fig1", pattern, cache_result=False)
        assert ("SD", "Fred") in set(second.relation.pairs())
        assert first.relation != second.relation
        assert second.relation == match_bounded(graph, pattern).relation
        stats = engine.reach_index_stats("fig1")
        assert stats is not None
        assert stats["misses"] > 0

    def test_engine_index_under_node_updates(self):
        engine = QueryEngine()
        graph = collaboration_graph(80, seed=5)
        engine.register_graph("g", graph)
        engine.enable_reach_index("g", max_depth=3)
        pattern = paper_pattern()
        engine.evaluate("g", pattern, cache_result=False)
        engine.update_graph("g", [
            NodeInsertion.with_attrs("zz", field="SA", experience=9),
            EdgeInsertion("zz", "p0"),
            NodeDeletion("p1"),
        ])
        fresh = engine.evaluate("g", pattern, use_cache=False, cache_result=False)
        assert fresh.relation == match_bounded(graph, pattern).relation

    def test_disable_reach_index(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        engine.enable_reach_index("fig1")
        engine.disable_reach_index("fig1")
        assert engine.reach_index_stats("fig1") is None


class TestVersionGuard:
    """Regression: a graph mutated behind the index's back must raise,
    never silently serve stale reach sets."""

    def test_out_of_band_mutation_raises(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        index = BoundedReachIndex(graph, max_depth=3)
        assert index.reach("a", 2) == {"b": 1, "c": 2}
        graph.add_edge("a", "c")  # bypasses on_update
        with pytest.raises(GraphError, match="behind the reach index's back"):
            index.reach("a", 2)

    def test_out_of_band_attribute_write_also_raises(self):
        # Attribute writes cannot change reachability, but the guard is a
        # version equality check on purpose: distinguishing benign drift
        # from structural drift would need the mutation history the index
        # never sees.
        graph = Graph.from_edges([("a", "b")])
        index = BoundedReachIndex(graph, max_depth=2)
        index.reach("a", 1)
        graph.set("a", "field", "SA")
        with pytest.raises(GraphError, match="behind the reach index's back"):
            index.reach("a", 1)

    def test_maintained_updates_keep_serving(self):
        from repro.incremental.updates import EdgeInsertion

        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        index = BoundedReachIndex(graph, max_depth=3)
        index.reach("a", 3)
        update = EdgeInsertion("a", "c")
        update.apply(graph)
        index.on_update(update)
        assert index.reach("a", 1) == {"b": 1, "c": 1}
        assert index.stats()["graph_version"] == graph.version

    def test_clear_resyncs_the_version(self):
        graph = Graph.from_edges([("a", "b")])
        index = BoundedReachIndex(graph, max_depth=2)
        graph.add_edge("b", "a")  # out-of-band...
        index.clear()             # ...acknowledged by a full rebuild
        assert index.reach("a", 2) == {"b": 1, "a": 2}

    def test_engine_routed_updates_never_trip_the_guard(self):
        from repro.engine.engine import QueryEngine
        from repro.incremental.updates import EdgeInsertion

        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        engine = QueryEngine()
        engine.register_graph("g", graph)
        engine.enable_reach_index("g", max_depth=3)
        entry = engine._entry("g")
        entry.reach_index.reach("a", 2)
        engine.update_graph("g", [EdgeInsertion("c", "a")])
        assert entry.reach_index.reach("a", 3)["a"] == 3
