"""Unit tests for the file-backed graph store."""

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.storage import GraphStore
from repro.errors import StorageError
from repro.matching.base import MatchRelation
from repro.matching.bounded import match_bounded


@pytest.fixture
def store(tmp_path) -> GraphStore:
    return GraphStore(tmp_path / "catalog")


class TestGraphs:
    def test_round_trip(self, store: GraphStore):
        store.save_graph("fig1", paper_graph())
        assert store.load_graph("fig1") == paper_graph()

    def test_listing_sorted(self, store: GraphStore):
        store.save_graph("zeta", paper_graph())
        store.save_graph("alpha", paper_graph())
        assert store.list_graphs() == ["alpha", "zeta"]

    def test_has_graph(self, store: GraphStore):
        assert not store.has_graph("fig1")
        store.save_graph("fig1", paper_graph())
        assert store.has_graph("fig1")

    def test_delete(self, store: GraphStore):
        store.save_graph("fig1", paper_graph())
        store.delete_graph("fig1")
        assert store.list_graphs() == []

    def test_delete_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError):
            store.delete_graph("nope")

    def test_load_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError, match="no stored graph"):
            store.load_graph("nope")

    def test_overwrite_replaces(self, store: GraphStore):
        store.save_graph("g", paper_graph())
        store.save_graph("g", paper_graph(include_e1=True))
        assert store.load_graph("g").has_edge("Fred", "Eva")


class TestNames:
    @pytest.mark.parametrize("bad", ["../evil", "a/b", "", ".hidden", "x" * 200])
    def test_invalid_names_rejected(self, store: GraphStore, bad):
        with pytest.raises(StorageError, match="invalid store name"):
            store.save_graph(bad, paper_graph())

    @pytest.mark.parametrize("good", ["fig1", "my-graph", "a.b_c", "G2"])
    def test_valid_names_accepted(self, store: GraphStore, good):
        store.save_graph(good, paper_graph())
        assert store.has_graph(good)


class TestPatterns:
    def test_round_trip(self, store: GraphStore):
        store.save_pattern("team", paper_pattern())
        assert store.load_pattern("team") == paper_pattern()

    def test_listing_and_delete(self, store: GraphStore):
        store.save_pattern("team", paper_pattern())
        assert store.list_patterns() == ["team"]
        store.delete_pattern("team")
        assert store.list_patterns() == []

    def test_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError):
            store.load_pattern("nope")
        with pytest.raises(StorageError):
            store.delete_pattern("nope")


class TestRelations:
    def test_round_trip(self, store: GraphStore):
        relation = match_bounded(paper_graph(), paper_pattern()).relation
        store.save_relation("fig1-team", relation)
        assert store.load_relation("fig1-team") == relation

    def test_empty_relation_round_trip(self, store: GraphStore):
        relation = MatchRelation({"A": frozenset()})
        store.save_relation("empty", relation)
        assert store.load_relation("empty") == relation

    def test_listing_and_delete(self, store: GraphStore):
        store.save_relation("r1", MatchRelation({"A": {"x"}}))
        assert store.list_relations() == ["r1"]
        store.delete_relation("r1")
        assert store.list_relations() == []

    def test_malformed_file_raises(self, store: GraphStore, tmp_path):
        store.save_relation("bad", MatchRelation({"A": {"x"}}))
        # Corrupt the stored file.
        path = store.root / "results" / "bad.json"
        path.write_text("{]")
        with pytest.raises(StorageError, match="malformed"):
            store.load_relation("bad")

    def test_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError):
            store.load_relation("nope")
        with pytest.raises(StorageError):
            store.delete_relation("nope")
