"""Unit tests for the file-backed graph store."""

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.storage import GraphStore
from repro.errors import StorageError
from repro.matching.base import MatchRelation
from repro.matching.bounded import match_bounded


@pytest.fixture
def store(tmp_path) -> GraphStore:
    return GraphStore(tmp_path / "catalog")


class TestGraphs:
    def test_round_trip(self, store: GraphStore):
        store.save_graph("fig1", paper_graph())
        assert store.load_graph("fig1") == paper_graph()

    def test_listing_sorted(self, store: GraphStore):
        store.save_graph("zeta", paper_graph())
        store.save_graph("alpha", paper_graph())
        assert store.list_graphs() == ["alpha", "zeta"]

    def test_has_graph(self, store: GraphStore):
        assert not store.has_graph("fig1")
        store.save_graph("fig1", paper_graph())
        assert store.has_graph("fig1")

    def test_delete(self, store: GraphStore):
        store.save_graph("fig1", paper_graph())
        store.delete_graph("fig1")
        assert store.list_graphs() == []

    def test_delete_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError):
            store.delete_graph("nope")

    def test_load_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError, match="no stored graph"):
            store.load_graph("nope")

    def test_overwrite_replaces(self, store: GraphStore):
        store.save_graph("g", paper_graph())
        store.save_graph("g", paper_graph(include_e1=True))
        assert store.load_graph("g").has_edge("Fred", "Eva")


class TestNames:
    @pytest.mark.parametrize("bad", ["../evil", "a/b", "", ".hidden", "x" * 200])
    def test_invalid_names_rejected(self, store: GraphStore, bad):
        with pytest.raises(StorageError, match="invalid store name"):
            store.save_graph(bad, paper_graph())

    @pytest.mark.parametrize("good", ["fig1", "my-graph", "a.b_c", "G2"])
    def test_valid_names_accepted(self, store: GraphStore, good):
        store.save_graph(good, paper_graph())
        assert store.has_graph(good)


class TestPatterns:
    def test_round_trip(self, store: GraphStore):
        store.save_pattern("team", paper_pattern())
        assert store.load_pattern("team") == paper_pattern()

    def test_listing_and_delete(self, store: GraphStore):
        store.save_pattern("team", paper_pattern())
        assert store.list_patterns() == ["team"]
        store.delete_pattern("team")
        assert store.list_patterns() == []

    def test_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError):
            store.load_pattern("nope")
        with pytest.raises(StorageError):
            store.delete_pattern("nope")


class TestRelations:
    def test_round_trip(self, store: GraphStore):
        relation = match_bounded(paper_graph(), paper_pattern()).relation
        store.save_relation("fig1-team", relation)
        assert store.load_relation("fig1-team") == relation

    def test_empty_relation_round_trip(self, store: GraphStore):
        relation = MatchRelation({"A": frozenset()})
        store.save_relation("empty", relation)
        assert store.load_relation("empty") == relation

    def test_listing_and_delete(self, store: GraphStore):
        store.save_relation("r1", MatchRelation({"A": {"x"}}))
        assert store.list_relations() == ["r1"]
        store.delete_relation("r1")
        assert store.list_relations() == []

    def test_malformed_file_raises(self, store: GraphStore, tmp_path):
        store.save_relation("bad", MatchRelation({"A": {"x"}}))
        # Corrupt the stored file.
        path = store.root / "results" / "bad.json"
        path.write_text("{]")
        with pytest.raises(StorageError, match="malformed"):
            store.load_relation("bad")

    def test_missing_raises(self, store: GraphStore):
        with pytest.raises(StorageError):
            store.load_relation("nope")
        with pytest.raises(StorageError):
            store.delete_relation("nope")

    def test_structurally_malformed_payload_raises(self, store: GraphStore):
        store.save_relation("bad", MatchRelation({"A": {"x"}}))
        path = store.root / "results" / "bad.json"
        # Valid JSON, right format tag, but "sets" is missing entirely.
        path.write_text('{"format": "repro.relation"}')
        with pytest.raises(StorageError, match="malformed result file"):
            store.load_relation("bad")
        # Valid JSON whose sets are not iterables of node ids.
        path.write_text('{"format": "repro.relation", "sets": {"A": 5}}')
        with pytest.raises(StorageError, match="malformed result file"):
            store.load_relation("bad")


class TestResultGraphNamespace:
    """Result graphs own their directory — no more ``.rg.json`` collisions."""

    @pytest.fixture
    def fig1_result(self):
        return match_bounded(paper_graph(), paper_pattern())

    def test_rg_suffixed_relation_does_not_collide(self, store, fig1_result):
        # The old layout stored result graph "foo" as results/foo.rg.json,
        # the same file as relation "foo.rg".  Both names must coexist now.
        store.save_relation("foo.rg", fig1_result.relation)
        store.save_result_graph("foo", fig1_result.result_graph())
        assert store.list_relations() == ["foo.rg"]
        assert store.list_result_graphs() == ["foo"]
        assert store.load_relation("foo.rg") == fig1_result.relation
        loaded = store.load_result_graph("foo", paper_graph(), paper_pattern())
        assert set(loaded.edges()) == set(fig1_result.result_graph().edges())

    def test_rg_suffixed_relations_are_listed(self, store, fig1_result):
        # The old scheme's listing filter silently hid these names.
        store.save_relation("team.rg", fig1_result.relation)
        store.save_relation("plain", fig1_result.relation)
        assert store.list_relations() == ["plain", "team.rg"]

    def test_deletes_stay_in_their_namespace(self, store, fig1_result):
        store.save_relation("foo.rg", fig1_result.relation)
        store.save_result_graph("foo", fig1_result.result_graph())
        store.delete_relation("foo.rg")
        assert store.list_result_graphs() == ["foo"]
        store.save_relation("foo.rg", fig1_result.relation)
        store.delete_result_graph("foo")
        assert store.list_relations() == ["foo.rg"]
        with pytest.raises(StorageError, match="no stored result graph"):
            store.delete_result_graph("foo")

    def test_result_graph_round_trip_and_overwrite(self, store, fig1_result):
        result_graph = fig1_result.result_graph()
        store.save_result_graph("rg", result_graph)
        store.save_result_graph("rg", result_graph)  # atomic overwrite
        assert store.list_result_graphs() == ["rg"]
        loaded = store.load_result_graph("rg", paper_graph(), paper_pattern())
        assert set(loaded.edges()) == set(result_graph.edges())

    def test_structurally_malformed_payload_raises(self, store, fig1_result):
        store.save_result_graph("bad", fig1_result.result_graph())
        path = store.root / "result_graphs" / "bad.json"
        # Valid JSON, right format tag, but no node/edge tables.
        path.write_text('{"format": "repro.result_graph"}')
        with pytest.raises(StorageError, match="malformed result-graph file"):
            store.load_result_graph("bad", paper_graph(), paper_pattern())
