"""Unit tests for the textual and DOT views."""

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.errors import ReproError
from repro.matching.bounded import match_bounded
from repro.ranking.social_impact import rank_matches
from repro.viz.ascii import (
    drill_down,
    graph_summary,
    node_card,
    relation_summary,
    render_ranking,
    render_result_graph,
    render_table,
    roll_up,
)
from repro.viz.dot import graph_to_dot, pattern_to_dot, result_to_dot


@pytest.fixture(scope="module")
def fig1_result():
    return match_bounded(paper_graph(), paper_pattern())


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(("name", "n"), [("bob", 1), ("alexander", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "alexander" in lines[3]

    def test_empty_rows(self):
        text = render_table(("a",), [])
        assert len(text.splitlines()) == 2


class TestGraphViews:
    def test_summary_contains_counts_and_histogram(self):
        text = graph_summary(paper_graph())
        assert "9 nodes, 12 edges" in text
        assert "SD" in text

    def test_node_card(self):
        text = node_card(paper_graph(), "Bob")
        assert "experience: 7" in text
        assert "'Bob'" in text
        assert "Dan" in text  # collaborates-with

    def test_node_card_unknown_raises(self):
        with pytest.raises(ReproError):
            node_card(paper_graph(), "Nobody")


class TestResultViews:
    def test_relation_summary_lists_matches(self, fig1_result):
        text = relation_summary(fig1_result.relation)
        assert "SA: Bob, Walt" in text

    def test_relation_summary_empty(self):
        from repro.matching.base import MatchRelation

        assert "no match" in relation_summary(MatchRelation({"A": frozenset()}))

    def test_roll_up_counts(self, fig1_result):
        text = roll_up(fig1_result.result_graph())
        assert "7 matches" in text
        assert "SD" in text

    def test_drill_down_shows_witness_edges(self, fig1_result):
        text = drill_down(fig1_result.result_graph(), "Bob")
        assert "-[3]-> Jean" in text
        assert "field: SA" in text

    def test_drill_down_unknown_raises(self, fig1_result):
        with pytest.raises(ReproError):
            drill_down(fig1_result.result_graph(), "Nobody")

    def test_render_result_graph_lists_edges(self, fig1_result):
        text = render_result_graph(fig1_result.result_graph())
        assert "Bob -[1]-> Dan" in text

    def test_render_ranking(self, fig1_result):
        ranked = rank_matches(fig1_result.result_graph())
        text = render_ranking(ranked)
        assert "1.8000" in text
        assert "Bob" in text

    def test_render_ranking_truncates_to_k(self, fig1_result):
        ranked = rank_matches(fig1_result.result_graph())
        text = render_ranking(ranked, k=1)
        assert "Walt" not in text


class TestDot:
    def test_graph_to_dot_well_formed(self):
        dot = graph_to_dot(paper_graph())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"Bob" -> "Dan";' in dot

    def test_pattern_to_dot_marks_output_and_bounds(self):
        dot = pattern_to_dot(paper_pattern())
        assert "doublecircle" in dot
        assert '[label="3"]' in dot

    def test_pattern_to_dot_unbounded_star(self):
        from repro.pattern.builder import PatternBuilder

        q = PatternBuilder().node("A").node("B").edge("A", "B", None).build()
        assert '[label="*"]' in pattern_to_dot(q)

    def test_result_to_dot_highlights_top(self, fig1_result):
        dot = result_to_dot(fig1_result.result_graph(), highlight="Bob")
        assert "color=red" in dot
        assert dot.count("penwidth=2") == 1  # exactly one highlighted node

    def test_dot_escapes_quotes(self):
        from repro.graph.digraph import Graph

        g = Graph()
        g.add_node('we"ird')
        dot = graph_to_dot(g)
        assert '\\"' in dot
