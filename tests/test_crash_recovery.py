"""Crash recovery: the fault sweep, degradation, and end-to-end replay.

Three layers of evidence that the WAL keeps its promise:

* the **deterministic sweep** (``repro.testing.chaos``) crashes at every
  registered fault point × every hit and asserts batch-atomic recovery;
* a **hypothesis property** does the same over *random* batch sequences
  and random kill points, compared against a never-crashed twin;
* **service-level** tests drive recovery through ``ExpFinderService``
  and live HTTP — including the subtle case of a batch that was durably
  logged and then failed validation (400): replay must skip it.
"""

from __future__ import annotations

import http.client
import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    FaultError,
    ReproError,
    ServiceDegradedError,
    StorageError,
)
from repro.graph.io import graph_to_dict
from repro.incremental.updates import NodeInsertion
from repro.server import ExpFinderService, QueryServer, ServiceConfig
from repro.server.wire import decode_updates
from repro.testing.chaos import (
    GRAPH_NAME,
    base_graph,
    build_stack,
    canonical_form,
    mixed_run,
    recover_stack,
    run_crash_sweep,
    run_scenario,
    scenario_batches,
    twin_states,
)
from repro.testing.faults import (
    ENV_VAR,
    FAULT_POINTS,
    FaultSpec,
    InjectedCrash,
    armed,
    disarm_faults,
    fault_point,
    fault_stats,
    install_from_env,
    parse_fault_env,
)


@pytest.fixture(autouse=True)
def _always_disarmed():
    disarm_faults()
    yield
    disarm_faults()


# ----------------------------------------------------------------------
# the fault-injection harness itself
# ----------------------------------------------------------------------

class TestFaultHarness:
    def test_unknown_point_raises_at_the_call_site(self):
        with pytest.raises(FaultError, match="not in the central registry"):
            fault_point("wal.made-up")  # repro-lint: disable=fault-point-registered -- asserting the runtime rejection the rule mirrors

    def test_disarmed_points_count_hits_but_never_fire(self):
        fault_point("wal.append")
        fault_point("wal.append")
        stats = fault_stats()
        assert stats["hits"]["wal.append"] == 2
        assert stats["fired"] == {}

    def test_armed_crash_fires_on_exactly_the_configured_hit(self):
        with armed("wal.append", after=2):
            fault_point("wal.append")  # hit 1: below the window
            with pytest.raises(InjectedCrash) as excinfo:
                fault_point("wal.append")
            assert excinfo.value.point == "wal.append"
            assert excinfo.value.hit == 2
            fault_point("wal.append")  # hit 3: window (count=1) passed

    def test_count_none_keeps_firing(self):
        with armed("wal.fsync", action="storage-error", count=None):
            for _ in range(3):
                with pytest.raises(StorageError, match="injected storage fault"):
                    fault_point("wal.fsync")

    def test_memory_error_action(self):
        with armed("registry.rebuild", action="memory-error"):
            with pytest.raises(MemoryError, match="injected memory fault"):
                fault_point("registry.rebuild")

    def test_injected_crash_is_not_an_exception(self):
        # `except Exception` recovery handlers must never absorb one.
        assert not issubclass(InjectedCrash, Exception)

    def test_arming_an_unknown_point_is_rejected(self):
        from repro.testing.faults import arm_faults

        with pytest.raises(FaultError, match="unknown fault point"):
            arm_faults({"nope": FaultSpec()})

    @pytest.mark.parametrize(
        "spec, match",
        [
            (FaultSpec(action="explode"), "unknown fault action"),
            (FaultSpec(after=0), "'after' must be >= 1"),
            (FaultSpec(count=0), "'count' must be >= 1"),
        ],
    )
    def test_spec_validation(self, spec, match):
        with pytest.raises(FaultError, match=match):
            spec.validate()

    def test_parse_env_grammar(self):
        specs = parse_fault_env("wal.fsync=crash@2, registry.rebuild=storage-error")
        assert specs == {
            "wal.fsync": FaultSpec(action="crash", after=2),
            "registry.rebuild": FaultSpec(action="storage-error", after=1),
        }

    @pytest.mark.parametrize(
        "value, match",
        [
            ("wal.fsync", "malformed fault spec"),
            ("wal.fsync=", "malformed fault spec"),
            ("wal.fsync=crash@soon", "malformed fault hit number"),
        ],
    )
    def test_parse_env_rejects_malformed_entries(self, value, match):
        with pytest.raises(FaultError, match=match):
            parse_fault_env(value)

    def test_install_from_env(self):
        assert install_from_env({}) is False
        assert install_from_env({ENV_VAR: "  "}) is False
        assert install_from_env({ENV_VAR: "wal.append=crash"}) is True
        with pytest.raises(InjectedCrash):
            fault_point("wal.append")

    def test_registry_is_closed_under_known_prefixes(self):
        prefixes = {name.split(".", 1)[0] for name in FAULT_POINTS}
        assert prefixes == {"wal", "registry", "checkpoint"}


# ----------------------------------------------------------------------
# the deterministic sweep: crash everywhere, recover everywhere
# ----------------------------------------------------------------------

class TestCrashSweep:
    def test_every_fault_point_survives_every_kill_site(self):
        report = run_crash_sweep()
        # every registered point was actually exercised ...
        assert report.fired_points() == FAULT_POINTS
        # ... every armed run really crashed (no vacuous successes) ...
        assert report.crashes == report.runs
        assert report.runs == sum(report.kill_sites.values())
        # ... and every recovery matched a batch-atomic prefix (the sweep
        # raises otherwise); the map records one verdict per kill site.
        assert len(report.recovered_prefix) == report.runs

    def test_uncrashed_scenario_recovers_to_the_final_state(self, tmp_path):
        batches = scenario_batches()
        states = twin_states(6, batches)
        processed, crashed = run_scenario(tmp_path, batches)
        assert (processed, crashed) == (len(batches), False)
        registry, wal = recover_stack(tmp_path)
        recovered = registry.current_epoch(GRAPH_NAME).graph
        assert canonical_form(recovered) == canonical_form(states[-1])
        mixed_run(registry)
        wal.close()


# ----------------------------------------------------------------------
# the randomized twin property
# ----------------------------------------------------------------------

def _random_batches(draw_ops: list[list[int]]) -> list[list[dict]]:
    """Integer soup → wire batches; negative codes yield invalid batches."""
    batches = []
    for batch_index, codes in enumerate(draw_ops):
        batch = []
        for op_index, code in enumerate(codes):
            node = f"r{batch_index}_{op_index}"
            if code < 0:
                # fails validation mid-batch: the edge already exists
                batch.append({"op": "add-node", "node": node, "attrs": {}})
                batch.append({"op": "add-edge", "source": "n0", "target": "n1"})
            elif code % 3 == 0:
                batch.append({"op": "add-node", "node": node, "attrs": {"c": code}})
            elif code % 3 == 1:
                batch.append({"op": "add-node", "node": node, "attrs": {}})
                batch.append(
                    {"op": "add-edge", "source": f"n{code % 6}", "target": node}
                )
            else:
                batch.append(
                    {
                        "op": "set-attr",
                        "node": f"n{code % 6}",
                        "attr": "round",
                        "value": code,
                    }
                )
        batches.append(batch)
    return batches


class TestRecoveryProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(
            st.lists(st.integers(min_value=-1, max_value=30), min_size=1, max_size=3),
            min_size=1,
            max_size=5,
        ),
        point=st.sampled_from(sorted(FAULT_POINTS)),
        hit=st.integers(min_value=1, max_value=6),
    )
    def test_recovery_equals_a_twin_prefix_covering_every_ack(self, ops, point, hit):
        batches = _random_batches(ops)
        states = twin_states(6, batches)
        forms = [canonical_form(state) for state in states]
        root = Path(tempfile.mkdtemp(prefix="hyp-crash-"))
        try:
            processed, _crashed = run_scenario(
                root, batches, arm={point: FaultSpec(action="crash", after=hit)}
            )
            # a random (point, hit) the scenario never reached stays armed;
            # the restarted process carries no armed faults, so disarm
            # before recovery rather than let it detonate there
            disarm_faults()
            registry, wal = recover_stack(root)
            recovered = canonical_form(registry.current_epoch(GRAPH_NAME).graph)
            assert recovered in forms, "torn state: matches no batch prefix"
            # write-ahead: recovery covers everything that was acknowledged
            best = max(i for i, form in enumerate(forms) if form == recovered)
            assert best >= processed
            wal.close()
        finally:
            disarm_faults()
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# graceful degradation: failed rebuilds keep the last good epoch
# ----------------------------------------------------------------------

class TestDegradation:
    @pytest.mark.parametrize("action", ["storage-error", "memory-error"])
    def test_failed_rebuild_degrades_instead_of_dying(self, tmp_path, action):
        registry, wal, _cp = build_stack(tmp_path)
        registry.register(GRAPH_NAME, base_graph())
        good_epoch = registry.current_epoch(GRAPH_NAME)
        with armed("registry.rebuild", action=action):
            with pytest.raises(ServiceDegradedError, match="durably logged"):
                registry.publish(GRAPH_NAME, [NodeInsertion.with_attrs("late")])
        assert registry.degraded
        status = registry.wal_status()["graphs"][GRAPH_NAME]
        assert status["replay_lag"] == 1  # logged but not serving
        assert status["degraded_reason"]
        # reads still work, from the last good epoch
        with registry.pin(GRAPH_NAME) as epoch:
            assert epoch.epoch_id == good_epoch.epoch_id
        # the next successful publish clears the flag and catches up
        registry.publish(GRAPH_NAME, [NodeInsertion.with_attrs("later")])
        assert not registry.degraded
        status = registry.wal_status()["graphs"][GRAPH_NAME]
        assert status["replay_lag"] == 0
        with registry.pin(GRAPH_NAME) as epoch:
            assert epoch.graph.has_node("late")  # the logged batch replayed
            assert epoch.graph.has_node("later")
        wal.close()

    def test_degraded_service_health(self, tmp_path):
        config = ServiceConfig(wal_dir=str(tmp_path / "wal"), workers=1)
        with ExpFinderService(config) as service:
            service.register_graph(GRAPH_NAME, base_graph())
            with armed("registry.rebuild", action="storage-error"):
                with pytest.raises(ServiceDegradedError):
                    service.update_graph(
                        GRAPH_NAME,
                        {"updates": [{"op": "add-node", "node": "x", "attrs": {}}]},
                    )
            health = service.health()
            assert health["status"] == "degraded"
            assert health["wal"]["graphs"][GRAPH_NAME]["replay_lag"] == 1


# ----------------------------------------------------------------------
# service-level recovery (ExpFinderService + live HTTP)
# ----------------------------------------------------------------------

def _service_config(tmp_path, **overrides):
    defaults = dict(
        wal_dir=str(tmp_path / "wal"),
        workers=1,
        checkpoint_background=False,
        checkpoint_every=1000,  # keep the WAL suffix around for replay
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestServiceRecovery:
    def test_clean_shutdown_replays_nothing(self, tmp_path):
        with ExpFinderService(_service_config(tmp_path)) as service:
            service.register_graph(GRAPH_NAME, base_graph())
            service.update_graph(
                GRAPH_NAME,
                {"updates": [{"op": "add-node", "node": "x", "attrs": {}}]},
            )
        # close() checkpointed, so a restart finds an empty WAL suffix
        with ExpFinderService(_service_config(tmp_path)) as service:
            assert service.recovered[GRAPH_NAME]["replayed"] == 0
            with service.registry.pin(GRAPH_NAME) as epoch:
                assert epoch.graph.has_node("x")

    def test_crash_recovery_replays_the_wal_suffix(self, tmp_path):
        service = ExpFinderService(_service_config(tmp_path))
        service.register_graph(GRAPH_NAME, base_graph())
        for index in range(3):
            service.update_graph(
                GRAPH_NAME,
                {"updates": [{"op": "add-node", "node": f"x{index}", "attrs": {}}]},
            )
        # simulated crash: no close(), no final checkpoint, no WAL seal
        del service
        with ExpFinderService(_service_config(tmp_path)) as revived:
            report = revived.recovered[GRAPH_NAME]
            assert report["status"] == "recovered"
            assert report["replayed"] == 3
            with revived.registry.pin(GRAPH_NAME) as epoch:
                assert all(epoch.graph.has_node(f"x{i}") for i in range(3))

    def test_drain_reports_quiet_service(self, tmp_path):
        with ExpFinderService(_service_config(tmp_path)) as service:
            assert service.drain(timeout=0.5) is True


class TestLiveHttpRecovery:
    def _post(self, address, path, payload):
        host, port = address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST",
                path,
                body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_mid_batch_400_after_wal_append_does_not_replay(self, tmp_path):
        """The durably-logged-but-invalid batch: logged, refused, skipped.

        ``publish`` appends to the WAL *before* applying, so a batch that
        fails validation mid-way is already durable when the client gets
        its 400.  Recovery must re-fail it identically — the torn prefix
        (``doomed`` without its edge) must never appear.
        """
        service = ExpFinderService(_service_config(tmp_path))
        server = QueryServer(service)
        server.start()
        try:
            status, _ = self._post(
                server.address,
                "/graphs",
                {"name": GRAPH_NAME, "graph": graph_to_dict(base_graph())},
            )
            assert status == 200
            status, error = self._post(
                server.address,
                f"/graphs/{GRAPH_NAME}/update",
                {
                    "updates": [
                        {"op": "add-node", "node": "doomed", "attrs": {}},
                        {"op": "add-edge", "source": "n0", "target": "n1"},  # dup
                    ]
                },
            )
            assert status == 400
            assert "error" in error
            status, _ = self._post(
                server.address,
                f"/graphs/{GRAPH_NAME}/update",
                {"updates": [{"op": "add-node", "node": "kept", "attrs": {}}]},
            )
            assert status == 200
        finally:
            # simulated crash: only the socket dies; the service never
            # runs its clean shutdown (no checkpoint, no WAL seal)
            server._httpd.shutdown()
            server._httpd.server_close()
        with ExpFinderService(_service_config(tmp_path)) as revived:
            report = revived.recovered[GRAPH_NAME]
            assert report["replayed"] == 1  # "kept"
            assert report["skipped"] == 1  # the 400 batch, re-failed
            with revived.registry.pin(GRAPH_NAME) as epoch:
                assert epoch.graph.has_node("kept")
                assert not epoch.graph.has_node("doomed")


# ----------------------------------------------------------------------
# determinism of the replay-skip contract
# ----------------------------------------------------------------------

class TestReplaySkip:
    def test_failed_batch_advances_applied_lsn(self, tmp_path):
        registry, wal, _cp = build_stack(tmp_path)
        registry.register(GRAPH_NAME, base_graph())
        bad = decode_updates(
            {
                "updates": [
                    {"op": "add-node", "node": "doomed", "attrs": {}},
                    {"op": "add-edge", "source": "n0", "target": "n1"},
                ]
            }
        )
        with pytest.raises(ReproError):
            registry.publish(GRAPH_NAME, bad)
        status = registry.wal_status()["graphs"][GRAPH_NAME]
        # the batch is final (refused), not pending: zero replay lag
        assert status["replay_lag"] == 0
        assert status["appended_lsn"] > 0
        with registry.pin(GRAPH_NAME) as epoch:
            assert not epoch.graph.has_node("doomed")
        wal.close()
