"""Fixture: mutations of frozen snapshot/oracle objects (all flagged)."""

from repro.graph.frozen import FrozenGraph


def corrupt_snapshot(graph):
    frozen = FrozenGraph.freeze(graph)
    frozen.labels = []  # assignment to a public buffer field
    frozen.out_offsets[0] = 9  # subscript store into a CSR buffer
    return frozen


def poke_oracle(oracle):
    oracle.rows_filled = 3  # parameter named `oracle` is tracked
