"""Fixture: version-counter discipline violations, all flagged."""


class MiniGraph:
    __slots__ = ("_attrs", "_version")

    def __init__(self):
        self._attrs = {}
        self._version = 0

    def set(self, node, attr, value):
        self._attrs[node][attr] = value  # mutates, never bumps

    def bulk(self, items):
        for node, attr, value in items:
            self._attrs[node][attr] = value
            self._version += 1  # bump per item inside the loop

    def attrs(self, node):
        return self._attrs[node]


def bypass(graph):
    graph.attrs("bob")["field"] = "SA"  # live-dict write, zero bumps
    graph.attrs("bob").update(field="BIO")  # in-place call, zero bumps
    graph._version = 7  # foreign counter poke
