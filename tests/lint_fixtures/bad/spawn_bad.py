"""Fixture: pool payloads that cannot be pickled under spawn (flagged)."""

import multiprocessing


def lambda_payload(chunks):
    with multiprocessing.Pool(2) as pool:
        return pool.map(lambda chunk: chunk, chunks)


def local_payload(chunks):
    def helper(chunk):
        return chunk

    with multiprocessing.Pool(2) as pool:
        return pool.map(helper, chunks)


def module_level_work(chunk):
    return chunk


def closure_initializer(setup, chunks):
    pool = multiprocessing.Pool(2, setup)  # parameter, not a module-level def
    with pool:
        return pool.map(module_level_work, chunks)
