"""Fixture (kernel-scoped path): nondeterminism sources, all flagged."""

import random
import time


def jitter():
    return random.random()  # process-global RNG


def stamp():
    return time.time()  # wall clock folded into a result


def collect(nodes):
    out = []
    for node in {"b", "a"}:  # iteration order depends on PYTHONHASHSEED
        out.append(node)
    return out + [node for node in set(nodes)]  # ordered from unordered
