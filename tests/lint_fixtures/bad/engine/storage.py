"""Fixture mirroring a boundary path: builtin errors leak (flagged)."""


def load_relation(payload):
    try:
        return payload["relation"]
    except KeyError:
        raise  # the caught builtin continues across the boundary


def save_relation(store, name):
    if name in store:
        raise ValueError(f"duplicate relation {name!r}")  # builtin raise
    store[name] = {}
