"""Fixture: a suppression without a justification is itself a finding,
and the directive it botched does not silence the original violation."""

from repro.engine.cache import QueryCache

cache = QueryCache(capacity=2)
entry = cache.peek("key")  # repro-lint: disable=cache-version-guard
