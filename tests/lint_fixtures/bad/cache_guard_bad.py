"""Fixture: version-blind reads of a tracked cache (both flagged)."""

from repro.engine.cache import QueryCache


def stale_read(key):
    cache = QueryCache(capacity=4)
    entry = cache.get(key)  # no Graph.version argument
    peeked = cache.peek(key)  # the version-blind accessor, unjustified
    return entry, peeked
