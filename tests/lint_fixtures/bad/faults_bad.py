"""Fixture: fault_point call sites the fault-point-registered rule flags."""

from repro.testing.faults import fault_point


def publish_with_typo() -> None:
    fault_point("wal.fysnc")  # typo: not in FAULT_POINTS


def computed_name(stage: str) -> None:
    fault_point("registry." + stage)  # non-literal: sweep cannot enumerate


def missing_name() -> None:
    fault_point()  # type: ignore[call-arg]
