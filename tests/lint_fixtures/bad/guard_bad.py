"""Fixture: dropped guards, broken guard chains, ungated cache puts."""

from repro.engine.cache import QueryCache


def charged_kernel(graph, guard):
    if guard is not None:
        guard.charge(1)
    return graph


def dropped_guard(graph, guard):  # accepts a guard, never reads it
    return graph


def broken_chain(graph, guard):
    guard.charge(1)
    return charged_kernel(graph)  # sibling kernel called without the guard


def cache_partial(key, result, version):
    cache = QueryCache(capacity=2)
    result.stats["partial"] = True
    cache.put(key, result.relation, version)  # not gated on the partial flag
