"""Fixture: a real violation silenced by a justified suppression."""

from repro.engine.cache import QueryCache

cache = QueryCache(capacity=2)
trailing = cache.peek("key")  # repro-lint: disable=cache-version-guard -- fixture: trailing-directive form of a justified exception

# repro-lint: disable=cache-version-guard -- fixture: standalone directive covering the next line
standalone = cache.peek("key")
