"""Fixture mirroring a boundary path: errors wrapped (clean)."""

from repro.errors import StorageError


def load_relation(payload):
    try:
        return payload["relation"]
    except KeyError as exc:
        raise StorageError("malformed payload: no relation section") from exc


def _peek_raw(payload):
    # Private helpers may speak builtin: only the public boundary wraps.
    if "relation" not in payload:
        raise KeyError("relation")
    return payload["relation"]
