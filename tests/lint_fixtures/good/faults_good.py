"""Fixture: registered fault_point call sites the rule accepts."""

from repro.testing.faults import fault_point


def durable_append(frame: bytes) -> bytes:
    fault_point("wal.append")
    fault_point("wal.fsync")
    return frame


def install_epoch() -> None:
    fault_point("registry.publish")
