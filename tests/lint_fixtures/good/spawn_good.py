"""Fixture: module-level pool payloads, picklable under spawn (clean)."""

import multiprocessing


def work(chunk):
    return chunk


def set_up():
    pass


def fan_out(chunks):
    with multiprocessing.Pool(2, initializer=set_up) as pool:
        return pool.map(work, chunks)
