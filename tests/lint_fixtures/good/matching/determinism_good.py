"""Fixture (kernel-scoped path): seeded, clock-free, ordered (clean)."""

import random
import time


def seeded(seed):
    rng = random.Random(seed)  # the one blessed constructor
    return rng.random()


def timed():
    return time.perf_counter()  # duration, not a date


def collect(nodes):
    unique = sorted(set(nodes))
    total = sum(len(node) for node in set(nodes))  # order-insensitive sink
    return [node for node in unique], total
