"""Fixture: version-validated cache reads (clean)."""

from repro.engine.cache import QueryCache


def fresh_read(key, graph):
    cache = QueryCache(capacity=4)
    positional = cache.get(key, graph.version)
    keyword = cache.get(key, graph_version=graph.version)
    return positional, keyword
