"""Fixture: one logical write, one bump; writes via the blessed API."""


class MiniGraph:
    __slots__ = ("_attrs", "_version")

    def __init__(self):
        self._attrs = {}
        self._version = 0

    def set(self, node, attr, value):
        self._attrs[node][attr] = value
        self._version += 1

    def update_attrs(self, items):
        for node, attr, value in items:
            self._attrs[node][attr] = value
        self._version += 1  # one bump for the whole batch


def blessed(graph):
    graph.set("bob", "field", "SA")
    value = graph.attrs("bob")["field"]  # reading the live dict is fine
    return value
