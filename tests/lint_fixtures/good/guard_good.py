"""Fixture: guards charged and forwarded; puts gated on partial (clean)."""

from repro.engine.cache import QueryCache


def charged_kernel(graph, guard):
    if guard is not None:
        guard.charge(1)
    return graph


def forwarding_kernel(graph, guard):
    guard.charge(1)
    charged_kernel(graph, guard)  # positional forward
    return charged_kernel(graph, guard=guard)  # keyword forward


def cache_complete(key, result, version):
    cache = QueryCache(capacity=2)
    if not result.stats.get("partial"):
        cache.put(key, result.relation, version)
