"""Fixture: frozen objects constructed and only ever read (clean)."""

from repro.graph.frozen import FrozenGraph


def read_snapshot(graph):
    frozen = FrozenGraph.freeze(graph)
    first_row = frozen.out_targets[frozen.out_offsets[0] : frozen.out_offsets[1]]
    return frozen.labels, list(first_row)


def read_oracle(oracle):
    return oracle.rows_filled
