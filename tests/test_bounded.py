"""Unit tests for bounded simulation — the core matcher."""

import pytest

from repro.errors import EvaluationError
from repro.graph.digraph import Graph
from repro.graph.generators import random_digraph
from repro.matching.bounded import BoundedState, match_bounded
from repro.matching.reference import (
    is_maximal_bounded_relation,
    is_valid_bounded_relation,
    naive_bounded,
)
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern

from tests.conftest import make_labelled_graph


def two_node_query(bound) -> Pattern:
    return (
        PatternBuilder()
        .node("A", 'label == "A"')
        .node("B", 'label == "B"')
        .edge("A", "B", bound)
        .build()
    )


class TestBasicSemantics:
    def test_bound_allows_path_through_intermediate(self):
        g = make_labelled_graph([("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"})
        assert match_bounded(g, two_node_query(2)).relation.num_pairs == 2

    def test_bound_one_requires_direct_edge(self):
        g = make_labelled_graph([("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"})
        assert match_bounded(g, two_node_query(1)).relation.is_empty

    def test_path_longer_than_bound_fails(self):
        g = make_labelled_graph(
            [("a", "m1"), ("m1", "m2"), ("m2", "b")],
            {"a": "A", "m1": "M", "m2": "M", "b": "B"},
        )
        assert match_bounded(g, two_node_query(2)).relation.is_empty
        assert match_bounded(g, two_node_query(3)).relation.num_pairs == 2

    def test_unbounded_edge_is_reachability(self):
        edges = [(f"n{i}", f"n{i+1}") for i in range(10)]
        labels = {f"n{i}": "M" for i in range(11)}
        labels["n0"] = "A"
        labels["n10"] = "B"
        g = make_labelled_graph(edges, labels)
        assert match_bounded(g, two_node_query(None)).relation.num_pairs == 2
        assert match_bounded(g, two_node_query(9)).relation.is_empty

    def test_nonempty_path_semantics_for_self_loop_pattern(self):
        q = Pattern()
        q.add_node("A", 'label == "A"')
        q.add_edge("A", "A", 2)
        # A 2-cycle of A-nodes: each reaches itself in 2 and the other in 1.
        g = make_labelled_graph([("a1", "a2"), ("a2", "a1")], {"a1": "A", "a2": "A"})
        assert match_bounded(g, q).relation.num_pairs == 2
        # A single A with no cycle cannot satisfy a nonempty path to an A.
        lone = make_labelled_graph([], {"a1": "A"})
        assert match_bounded(lone, q).relation.is_empty

    def test_predicates_filter_candidates(self):
        g = Graph()
        g.add_node("senior", label="A", exp=9)
        g.add_node("junior", label="A", exp=2)
        g.add_node("b", label="B", exp=1)
        g.add_edges([("senior", "b"), ("junior", "b")])
        q = (
            PatternBuilder()
            .node("A", 'label == "A", exp >= 5')
            .node("B", 'label == "B"')
            .edge("A", "B", 1)
            .build()
        )
        assert match_bounded(g, q).relation.matches_of("A") == {"senior"}

    def test_all_or_nothing_totality(self):
        # B matches exist but C has no candidate: the whole relation is empty.
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .node("C", 'label == "C"')
            .edge("A", "B", 2)
            .build()
        )
        result = match_bounded(g, q)
        assert result.relation.is_empty
        assert result.relation.matches_of("A") == frozenset()

    def test_diamond_multiple_witnesses(self, diamond: Graph):
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("D", 'label == "D"')
            .edge("A", "D", 2)
            .build()
        )
        assert match_bounded(diamond, q).relation.num_pairs == 2

    def test_cyclic_pattern_with_bounds(self, cycle3: Graph):
        q = (
            PatternBuilder()
            .node("X", 'label == "X"')
            .node("Z", 'label == "Z"')
            .edge("X", "Z", 2)
            .edge("Z", "X", 1)
            .build()
        )
        result = match_bounded(cycle3, q)
        assert sorted(result.relation.pairs()) == [("X", "x"), ("Z", "z")]

    def test_result_carries_reusable_state(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        result = match_bounded(g, two_node_query(1))
        assert isinstance(result._state, BoundedState)
        assert result.stats["algorithm"] == "bounded-simulation"


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_naive_on_random_graphs(self, seed):
        g = random_digraph(16, 40, num_labels=3, seed=seed)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .node("C", 'label == "L2"')
            .edge("A", "B", 2)
            .edge("B", "C", 3)
            .edge("C", "A", 2)
            .build()
        )
        assert match_bounded(g, q).relation == naive_bounded(g, q)

    @pytest.mark.parametrize("seed", range(6))
    def test_result_is_valid_and_locally_maximal(self, seed):
        g = random_digraph(12, 28, num_labels=2, seed=seed)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 2)
            .build()
        )
        relation = match_bounded(g, q).relation
        sets = {u: set(relation.matches_of(u)) for u in q.nodes()}
        assert is_valid_bounded_relation(g, q, sets)
        assert is_maximal_bounded_relation(g, q, sets)

    def test_isomorphism_matches_are_contained(self):
        from repro.matching.isomorphism import find_isomorphisms

        g = random_digraph(14, 45, num_labels=2, seed=3)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 1)
            .build()
        )
        relation = match_bounded(g, q).relation
        for mapping in find_isomorphisms(g, q):
            for pattern_node, data_node in mapping.items():
                assert data_node in relation.matches_of(pattern_node)


class TestStateInvariants:
    def test_invariants_after_batch_match(self):
        g = random_digraph(20, 60, num_labels=3, seed=5)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 2)
            .build()
        )
        state = BoundedState(g, q)
        state.check_invariants()

    def test_match_edges_respect_bounds(self, fig1, fig1_query):
        state = BoundedState(fig1, fig1_query)
        bounds = {(s, t): b for s, t, b in fig1_query.edges()}
        assert max(b for b in bounds.values()) == 3
        for _source, _target, dist in state.match_edges():
            assert 1 <= dist <= 3

    def test_add_member_rejects_duplicates(self, fig1, fig1_query):
        state = BoundedState(fig1, fig1_query)
        with pytest.raises(EvaluationError, match="already a member"):
            state.add_member("SA", "Bob")

    def test_empty_candidate_sets_give_empty_relation(self):
        g = make_labelled_graph([], {"a": "A"})
        q = two_node_query(2)
        state = BoundedState(g, q)
        assert state.relation().is_empty
