"""Property-based tests for the matchers (hypothesis).

Strategy: generate random labelled digraphs and random small patterns, then
check algebraic properties against the naive reference implementations and
against each other.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.digraph import Graph
from repro.matching.bounded import match_bounded
from repro.matching.isomorphism import find_isomorphisms
from repro.matching.reference import (
    is_valid_bounded_relation,
    naive_bounded,
    naive_simulation,
)
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern

LABELS = ("A", "B", "C")


@st.composite
def graphs(draw, max_nodes=10, max_edges=22):
    """A random labelled digraph."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    node_labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=num_nodes, max_size=num_nodes)
    )
    graph = Graph()
    for index, label in enumerate(node_labels):
        graph.add_node(index, label=label)
    possible = [
        (s, t) for s in range(num_nodes) for t in range(num_nodes) if s != t
    ]
    if possible:
        edges = draw(
            st.lists(
                st.sampled_from(possible),
                max_size=min(max_edges, len(possible)),
                unique=True,
            )
        )
        graph.add_edges(edges)
    return graph


@st.composite
def patterns(draw, max_nodes=3):
    """A random pattern over the LABELS alphabet with random bounds."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    pattern = Pattern()
    names = [f"P{i}" for i in range(num_nodes)]
    for index, name in enumerate(names):
        label = draw(st.sampled_from(LABELS))
        pattern.add_node(name, f'label == "{label}"')
    possible = [(a, b) for a in names for b in names]
    chosen = draw(
        st.lists(st.sampled_from(possible), max_size=4, unique=True)
    )
    for source, target in chosen:
        bound = draw(st.sampled_from([1, 2, 3, None]))
        pattern.add_edge(source, target, bound)
    return pattern


@given(graphs(), patterns())
@settings(max_examples=120, deadline=None)
def test_bounded_matches_naive_reference(graph, pattern):
    assert match_bounded(graph, pattern).relation == naive_bounded(graph, pattern)


@given(graphs(), patterns())
@settings(max_examples=80, deadline=None)
def test_bounded_result_is_a_valid_fixpoint(graph, pattern):
    relation = match_bounded(graph, pattern).relation
    sets = {u: set(relation.matches_of(u)) for u in pattern.nodes()}
    assert is_valid_bounded_relation(graph, pattern, sets)


@given(graphs(), patterns())
@settings(max_examples=80, deadline=None)
def test_simulation_is_bounded_with_unit_bounds(graph, pattern):
    """Forcing every bound to 1 must reduce bounded simulation to plain
    simulation (the paper: 'graph simulation is a special case when the
    bound on each pattern edge is 1')."""
    unit = Pattern()
    for node in pattern.nodes():
        unit.add_node(node, pattern.predicate(node))
    for source, target, _bound in pattern.edges():
        unit.add_edge(source, target, 1)
    assert (
        match_simulation(graph, unit).relation
        == match_bounded(graph, unit).relation
    )


@given(graphs(), patterns())
@settings(max_examples=80, deadline=None)
def test_simulation_matches_naive(graph, pattern):
    unit = Pattern()
    for node in pattern.nodes():
        unit.add_node(node, pattern.predicate(node))
    for source, target, _bound in pattern.edges():
        unit.add_edge(source, target, 1)
    assert match_simulation(graph, unit).relation == naive_simulation(graph, unit)


@given(graphs(), patterns())
@settings(max_examples=60, deadline=None)
def test_relaxing_bounds_grows_matches(graph, pattern):
    """Monotonicity: increasing every bound can only add match pairs."""
    relaxed = Pattern()
    for node in pattern.nodes():
        relaxed.add_node(node, pattern.predicate(node))
    for source, target, bound in pattern.edges():
        relaxed.add_edge(source, target, None if bound is None else bound + 1)
    tight = match_bounded(graph, pattern).relation
    loose = match_bounded(graph, relaxed).relation
    if not tight.is_empty:
        assert set(tight.pairs()) <= set(loose.pairs())


@given(graphs(), patterns())
@settings(max_examples=60, deadline=None)
def test_adding_edges_grows_matches(graph, pattern):
    """Monotonicity in the data: inserting graph edges never removes pairs."""
    before = match_bounded(graph, pattern).relation
    bigger = graph.copy()
    nodes = list(bigger.nodes())
    added = 0
    for source in nodes:
        for target in nodes:
            if source != target and not bigger.has_edge(source, target):
                bigger.add_edge(source, target)
                added += 1
                if added >= 3:
                    break
        if added >= 3:
            break
    after = match_bounded(bigger, pattern).relation
    if not before.is_empty:
        assert set(before.pairs()) <= set(after.pairs())


@given(graphs(max_nodes=7, max_edges=14), patterns(max_nodes=3))
@settings(max_examples=40, deadline=None)
def test_isomorphism_embeddings_within_bounded_matches(graph, pattern):
    """Every isomorphism embedding is contained in the bounded relation
    (bounds >= 1 only make matching easier than edge-to-edge)."""
    relation = match_bounded(graph, pattern).relation
    for mapping in find_isomorphisms(graph, pattern, limit=20):
        for pattern_node, data_node in mapping.items():
            assert data_node in relation.matches_of(pattern_node)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_single_node_pattern_is_predicate_filter(graph):
    pattern = Pattern()
    pattern.add_node("P", 'label == "A"')
    relation = match_bounded(graph, pattern).relation
    expected = {v for v in graph.nodes() if graph.get(v, "label") == "A"}
    assert set(relation.matches_of("P")) == expected
