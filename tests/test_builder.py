"""Unit tests for the fluent PatternBuilder."""

import pytest

from repro.errors import PatternError
from repro.pattern.builder import PatternBuilder
from repro.pattern.predicates import Cmp


class TestBuilder:
    def test_chained_construction(self):
        pattern = (
            PatternBuilder("t")
            .node("A", "x >= 1", output=True)
            .node("B")
            .edge("A", "B", bound=2)
            .build()
        )
        assert pattern.num_nodes == 2
        assert pattern.bound("A", "B") == 2
        assert pattern.output_node == "A"

    def test_kwargs_become_equalities(self):
        pattern = PatternBuilder().node("A", field="SA").build()
        assert pattern.predicate("A").evaluate({"field": "SA"})
        assert not pattern.predicate("A").evaluate({"field": "SD"})

    def test_text_and_kwargs_combine_conjunctively(self):
        pattern = PatternBuilder().node("A", "experience >= 5", field="SA").build()
        predicate = pattern.predicate("A")
        assert predicate.evaluate({"field": "SA", "experience": 6})
        assert not predicate.evaluate({"field": "SA", "experience": 2})
        assert not predicate.evaluate({"field": "SD", "experience": 9})

    def test_predicate_object_accepted(self):
        pattern = PatternBuilder().node("A", Cmp("x", "<", 3)).build()
        assert pattern.predicate("A") == Cmp("x", "<", 3)

    def test_output_method(self):
        pattern = PatternBuilder().node("A").output("A").build(require_output=True)
        assert pattern.output_node == "A"

    def test_build_require_output_raises_without(self):
        with pytest.raises(PatternError, match="output"):
            PatternBuilder().node("A").build(require_output=True)

    def test_builder_cannot_be_reused(self):
        builder = PatternBuilder().node("A")
        builder.build()
        with pytest.raises(PatternError, match="already built"):
            builder.node("B")
        with pytest.raises(PatternError, match="already built"):
            builder.build()

    def test_bad_condition_type_raises(self):
        with pytest.raises(PatternError):
            PatternBuilder().node("A", condition=3.14)  # type: ignore[arg-type]

    def test_unbounded_edge(self):
        pattern = PatternBuilder().node("A").node("B").edge("A", "B", bound=None).build()
        assert pattern.bound("A", "B") is None
