"""Unit tests for the pattern text format."""

import pytest

from repro.datasets.paper_example import paper_pattern
from repro.errors import PatternError
from repro.pattern.parser import format_pattern, load_pattern, parse_pattern, save_pattern

FIG1_TEXT = """
pattern fig1-team
node SA* : field == "SA", experience >= 5
node SD  : field == "SD", experience >= 2
node BA  : field == "BA", experience >= 3
node ST  : field == "ST", experience >= 2
edge SA -> SD : 2
edge SA -> BA : 3
edge SD -> ST : 1
edge BA -> ST : 2
"""


class TestParse:
    def test_parses_fig1(self):
        pattern = parse_pattern(FIG1_TEXT)
        assert pattern == paper_pattern()

    def test_name_from_header(self):
        assert parse_pattern(FIG1_TEXT).name == "fig1-team"

    def test_star_marks_output(self):
        assert parse_pattern(FIG1_TEXT).output_node == "SA"

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nnode A : x >= 1  # trailing\nnode B\nedge A -> B : 2\n"
        pattern = parse_pattern(text)
        assert pattern.num_nodes == 2
        assert pattern.bound("A", "B") == 2

    def test_node_without_condition(self):
        pattern = parse_pattern("node A\nnode B\nedge A -> B")
        assert pattern.predicate("A").evaluate({})

    def test_edge_default_bound_is_one(self):
        pattern = parse_pattern("node A\nnode B\nedge A -> B")
        assert pattern.bound("A", "B") == 1

    def test_star_bound_is_unbounded(self):
        pattern = parse_pattern("node A\nnode B\nedge A -> B : *")
        assert pattern.bound("A", "B") is None

    def test_unparsable_line_raises_with_lineno(self):
        with pytest.raises(PatternError, match="line 2"):
            parse_pattern("node A\nwhat is this\n")

    def test_edge_before_node_raises(self):
        with pytest.raises(PatternError, match="unknown pattern node"):
            parse_pattern("edge A -> B : 1")

    def test_empty_text_raises(self):
        with pytest.raises(PatternError, match="no nodes"):
            parse_pattern("# nothing here\n")


class TestFormat:
    def test_round_trip_fig1(self):
        pattern = paper_pattern()
        assert parse_pattern(format_pattern(pattern)) == pattern

    def test_round_trip_unbounded_and_bare(self):
        text = "node A*\nnode B : x in [1, 2]\nedge A -> B : *\n"
        pattern = parse_pattern(text)
        assert parse_pattern(format_pattern(pattern)) == pattern

    def test_format_contains_star_for_output(self):
        assert "node SA*" in format_pattern(paper_pattern())


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = save_pattern(paper_pattern(), tmp_path / "q.pattern")
        assert load_pattern(path) == paper_pattern()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(PatternError, match="not found"):
            load_pattern(tmp_path / "missing.pattern")

    def test_load_uses_stem_as_default_name(self, tmp_path):
        pattern = paper_pattern()
        pattern.name = ""
        path = save_pattern(pattern, tmp_path / "myquery.pattern")
        assert load_pattern(path).name == "myquery"
