"""Property-based tests for the cardinality estimator (hypothesis).

The estimator's contract (module docstring of :mod:`repro.engine.estimator`)
is three-fold: estimates are *bounded* by the exact counts they sample,
*deterministic* for a fixed seed, and *degrade gracefully* — confidence
grows monotonically with sample coverage and shrinks under probe
truncation.  Each clause gets a property here, checked against a naive
exact-ball reference; the guard/budget classes get direct unit coverage.
"""

from __future__ import annotations

import multiprocessing

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.engine.estimator import (
    GUARD_NODE_BUDGET,
    GUARD_TIME_LIMIT,
    FrontierEstimate,
    QueryBudget,
    QueryGuard,
    estimate_pattern,
    sample_frontier,
)
from repro.errors import BudgetExceededError, EvaluationError
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_digraph
from repro.matching.simulation import simulation_candidates
from repro.pattern.pattern import Pattern


@st.composite
def adjacencies(draw, max_nodes=12):
    """A frozen-style adjacency: one frozenset of successors per node."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    rows = []
    for _ in range(num_nodes):
        successors = draw(
            st.frozensets(
                st.integers(min_value=0, max_value=num_nodes - 1), max_size=5
            )
        )
        rows.append(successors)
    return tuple(rows)


def exact_ball(adjacency, source, depth):
    """Reference ball: nodes reachable within ``depth`` via nonempty paths."""
    frontier = set(adjacency[source])
    seen = set(frontier)
    level = 1
    while frontier and (depth is None or level < depth):
        grown = set()
        for node in frontier:
            grown |= adjacency[node]
        frontier = grown - seen
        seen |= frontier
        level += 1
    return seen


DEPTHS = st.one_of(st.none(), st.integers(min_value=1, max_value=4))


@settings(max_examples=60, deadline=None)
@given(adjacency=adjacencies(), depth=DEPTHS, data=st.data())
def test_full_sample_equals_exact_mean(adjacency, depth, data):
    """Sampling every source with no truncation *is* the exact mean ball."""
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(adjacency) - 1),
            min_size=1,
            max_size=len(adjacency),
            unique=True,
        )
    )
    estimate = sample_frontier(
        adjacency, sources, depth, sample_size=len(sources), probe_cap=10**6
    )
    exact_sizes = [len(exact_ball(adjacency, s, depth)) for s in sources]
    assert estimate.frontier == pytest.approx(
        sum(exact_sizes) / len(exact_sizes)
    )
    assert estimate.truncated == 0
    assert estimate.confidence == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(
    adjacency=adjacencies(),
    depth=DEPTHS,
    sample_size=st.integers(min_value=1, max_value=12),
    probe_cap=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_estimates_stay_within_exact_bounds(
    adjacency, depth, sample_size, probe_cap, data
):
    """Any sample, any cap: the estimate is bracketed by the exact balls.

    A probe reports at most its source's true ball (truncation only ever
    *under*-counts), so the sampled mean can never exceed the largest
    exact ball — nor the graph size — and never goes negative.
    """
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(adjacency) - 1),
            min_size=1,
            max_size=len(adjacency),
            unique=True,
        )
    )
    estimate = sample_frontier(
        adjacency, sources, depth, sample_size=sample_size, probe_cap=probe_cap
    )
    exact_sizes = [len(exact_ball(adjacency, s, depth)) for s in sources]
    assert 0.0 <= estimate.frontier <= max(exact_sizes) + 1e-9
    assert estimate.frontier <= len(adjacency)
    assert 0.0 < estimate.confidence <= 1.0
    if estimate.truncated == 0 and estimate.sample_size == len(sources):
        assert estimate.frontier >= min(exact_sizes) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    adjacency=adjacencies(),
    depth=DEPTHS,
    sample_size=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_deterministic_for_fixed_seed(adjacency, depth, sample_size, data):
    """Same inputs, same seed: the whole estimate is reproducible."""
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(adjacency) - 1),
            min_size=1,
            max_size=len(adjacency),
            unique=True,
        )
    )
    first = sample_frontier(adjacency, sources, depth, sample_size=sample_size)
    second = sample_frontier(adjacency, sources, depth, sample_size=sample_size)
    assert first == second  # frozen dataclass: field-for-field identity


@settings(max_examples=40, deadline=None)
@given(adjacency=adjacencies(), depth=DEPTHS, data=st.data())
def test_confidence_degrades_monotonically_with_sample_size(
    adjacency, depth, data
):
    """Fewer probes never claim *more* confidence (no truncation in play)."""
    assume(len(adjacency) >= 2)
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(adjacency) - 1),
            min_size=2,
            max_size=len(adjacency),
            unique=True,
        )
    )
    confidences = [
        sample_frontier(
            adjacency, sources, depth, sample_size=k, probe_cap=10**6
        ).confidence
        for k in range(1, len(sources) + 1)
    ]
    assert all(a <= b + 1e-12 for a, b in zip(confidences, confidences[1:]))


def test_truncation_discounts_confidence():
    """A capped probe is a lower bound, and the confidence must say so."""
    # One long chain: depth-None probe from node 0 visits every other node.
    chain = tuple(
        frozenset({i + 1}) if i + 1 < 64 else frozenset() for i in range(64)
    )
    free = sample_frontier(chain, [0], None, probe_cap=10**6)
    capped = sample_frontier(chain, [0], None, probe_cap=4)
    assert free.truncated == 0
    assert capped.truncated == 1
    assert capped.confidence < free.confidence
    assert capped.frontier <= free.frontier


def test_sample_frontier_rejects_bad_knobs():
    adjacency = (frozenset({0}),)
    with pytest.raises(EvaluationError, match="sample_size"):
        sample_frontier(adjacency, [0], 1, sample_size=0)
    with pytest.raises(EvaluationError, match="probe_cap"):
        sample_frontier(adjacency, [0], 1, probe_cap=0)


def test_empty_sources_estimate_is_trivially_confident():
    estimate = sample_frontier((frozenset(),), [], 2)
    assert estimate == FrontierEstimate(2, 0, 0.0, 0.0, 0, 0, 1.0)


# ----------------------------------------------------------------------
# estimate_pattern: the explain()/routing assembly
# ----------------------------------------------------------------------

def test_estimate_pattern_covers_every_edge_and_is_deterministic():
    graph = random_digraph(40, 120, seed=7)
    pattern = Pattern("p")
    pattern.add_node("A", None)
    pattern.add_node("B", None)
    pattern.add_node("C", None)
    pattern.add_edge("A", "B", 2)
    pattern.add_edge("A", "C", None)
    pattern.add_edge("B", "C", 3)
    frozen = FrozenGraph.freeze(graph)
    ids = frozen.ids()
    candidate_ids = {
        u: frozenset(ids[v] for v in vs)
        for u, vs in simulation_candidates(graph, pattern).items()
    }
    first = estimate_pattern(frozen, pattern, candidate_ids)
    second = estimate_pattern(frozen, pattern, candidate_ids)
    assert first == second
    assert {e.edge for e in first.edges} == {("A", "B"), ("A", "C"), ("B", "C")}
    assert first.total_visits >= 0.0
    assert first.total_cost == pytest.approx(sum(e.cost for e in first.edges))
    lines = first.describe_lines()
    assert len(lines) == 4 and lines[-1].startswith("estimated total:")


# ----------------------------------------------------------------------
# QueryBudget / QueryGuard units
# ----------------------------------------------------------------------

def test_budget_validation_rules():
    QueryBudget(node_visits=1, seconds=0.5).validate()
    QueryBudget().validate()  # unlimited budgets are legal (and ignored)
    assert not QueryBudget().is_limited
    assert QueryBudget(seconds=1.0).is_limited
    with pytest.raises(EvaluationError, match="node_visits"):
        QueryBudget(node_visits=0).validate()
    with pytest.raises(EvaluationError, match="node_visits"):
        QueryBudget(node_visits=True).validate()
    with pytest.raises(EvaluationError, match="seconds"):
        QueryBudget(seconds=0.0).validate()
    with pytest.raises(EvaluationError, match="replan_factor"):
        QueryBudget(replan_factor=1.0).validate()


def test_guard_trips_on_visits_and_raises_without_allow_partial():
    guard = QueryGuard(QueryBudget(node_visits=10, allow_partial=True))
    guard.charge(10)
    assert not guard.should_stop()  # exactly at the limit is still legal
    guard.charge(1)
    assert guard.tripped == GUARD_NODE_BUDGET
    assert guard.should_stop()
    assert guard.stats() == {
        "partial": True,
        "visits": 11,
        "guard": GUARD_NODE_BUDGET,
    }

    hard = QueryGuard(QueryBudget(node_visits=10))
    with pytest.raises(BudgetExceededError, match=GUARD_NODE_BUDGET):
        hard.charge(11)


def test_guard_time_limit_uses_injected_clock():
    now = [0.0]
    guard = QueryGuard(
        QueryBudget(seconds=5.0, allow_partial=True), clock=lambda: now[0]
    )
    assert not guard.should_stop()
    now[0] = 5.1
    assert guard.should_stop()
    assert guard.tripped == GUARD_TIME_LIMIT
    assert "within budget" not in repr(guard)


def test_guard_shared_counter_aggregates_across_instances():
    """Two guards over one counter model two shard workers on one budget."""
    counter = multiprocessing.Value("q", 0)
    budget = QueryBudget(node_visits=100, allow_partial=True)
    left = QueryGuard(budget, shared_counter=counter)
    right = QueryGuard(budget, shared_counter=counter)
    left.charge(60)
    right.charge(60)  # joint total 120 > 100: the *shared* budget is blown
    assert right.tripped == GUARD_NODE_BUDGET
    assert left.should_stop()  # sees the shared total, not its local 60
    assert left.stats()["visits"] == 60  # local accounting stays local
    assert counter.value == 120


def test_guard_ignores_nonpositive_charges():
    guard = QueryGuard(QueryBudget(node_visits=5, allow_partial=True))
    guard.charge(0)
    guard.charge(-3)
    assert guard.visits == 0
    assert not guard.should_stop()
