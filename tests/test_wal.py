"""The write-ahead changelog: framing, rotation, torn tails, checkpoints.

Companion to ``tests/test_crash_recovery.py`` (which owns the fault
sweep and the hypothesis property); this file pins the WAL's file-format
and lifecycle contracts in isolation — every corruption a distinct
``WalError``, every policy observable through ``stats()``.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.engine.storage import GraphStore
from repro.errors import StorageError, WalError
from repro.graph.digraph import Graph
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
)
from repro.server.registry import SnapshotRegistry
from repro.server.wal import (
    RECORD_BATCH,
    SEGMENT_MAGIC,
    Checkpointer,
    WriteAheadLog,
    checkpoint_artifact,
)
from repro.server.wire import decode_updates, encode_update
from repro.testing.faults import armed

BATCH = [{"op": "add-node", "node": "x", "attrs": {}}]


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal")
    yield log
    log.close()


def small_graph(name: str = "g", nodes: int = 4) -> Graph:
    graph = Graph(name)
    for index in range(nodes):
        graph.add_node(f"n{index}", index=index)
    for index in range(nodes - 1):
        graph.add_edge(f"n{index}", f"n{index + 1}")
    return graph


# ----------------------------------------------------------------------
# framing + append
# ----------------------------------------------------------------------

class TestAppend:
    def test_lsns_are_monotonic_from_one(self, wal):
        assert [wal.append("g", BATCH, 0) for _ in range(3)] == [1, 2, 3]
        assert wal.last_lsn == 3

    def test_records_round_trip(self, wal):
        wal.append("g", BATCH, base_version=7)
        [record] = wal.records()
        assert record.graph == "g"
        assert record.base_version == 7
        assert record.updates == BATCH
        assert record.type == RECORD_BATCH

    def test_records_filters_by_graph_and_lsn(self, wal):
        wal.append("a", BATCH, 0)
        wal.append("b", BATCH, 0)
        wal.append("a", BATCH, 0)
        assert [r.lsn for r in wal.records(graph="a")] == [1, 3]
        assert [r.lsn for r in wal.records(after_lsn=2)] == [3]

    def test_unserializable_batch_rejected_before_append(self, wal):
        with pytest.raises(WalError, match="not JSON-serializable"):
            wal.append("g", [{"op": "add-node", "node": object()}], 0)
        assert wal.records() == []  # nothing half-written

    def test_append_after_close_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal")
        log.close()
        with pytest.raises(WalError, match="closed"):
            log.append("g", BATCH, 0)

    def test_close_is_idempotent(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal")
        log.close()
        log.close()

    def test_wal_error_is_a_storage_error(self):
        assert issubclass(WalError, StorageError)


class TestConfigValidation:
    def test_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(WalError, match="unknown fsync policy"):
            WriteAheadLog(tmp_path / "wal", fsync="every-full-moon")

    def test_tiny_segment_bytes(self, tmp_path):
        with pytest.raises(WalError, match="segment_bytes too small"):
            WriteAheadLog(tmp_path / "wal", segment_bytes=8)

    def test_bad_fsync_interval(self, tmp_path):
        with pytest.raises(WalError, match="fsync_interval"):
            WriteAheadLog(tmp_path / "wal", fsync_interval=0)


# ----------------------------------------------------------------------
# fsync policies
# ----------------------------------------------------------------------

class TestFsyncPolicies:
    def test_always_syncs_every_append(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", fsync="always")
        for _ in range(3):
            log.append("g", BATCH, 0)
        assert log.stats()["fsyncs"] == 3
        log.close()

    def test_batch_amortizes(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", fsync="batch", fsync_interval=4)
        for _ in range(8):
            log.append("g", BATCH, 0)
        assert log.stats()["fsyncs"] == 2
        log.close()

    def test_none_never_syncs_on_append(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", fsync="none")
        for _ in range(5):
            log.append("g", BATCH, 0)
        assert log.stats()["fsyncs"] == 0
        log.close()

    def test_explicit_sync_works_under_any_policy(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", fsync="none")
        log.append("g", BATCH, 0)
        log.sync()
        assert log.stats()["fsyncs"] == 1
        log.close()


# ----------------------------------------------------------------------
# rotation + sealing + reopen
# ----------------------------------------------------------------------

class TestRotation:
    def test_small_segments_rotate_and_seal(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", segment_bytes=256)
        for _ in range(6):
            log.append("g", BATCH, 0)
        stats = log.stats()
        assert stats["rotations"] >= 1
        assert stats["seals"] == stats["rotations"]
        assert stats["segments"] == stats["rotations"] + 1
        log.close()

    def test_rotation_preserves_every_record(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", segment_bytes=256)
        lsns = [log.append("g", BATCH, 0) for _ in range(6)]
        # seal records consume LSNs too, so batch LSNs are strictly
        # increasing but not consecutive across a rotation
        assert [r.lsn for r in log.records()] == lsns
        assert lsns == sorted(set(lsns))
        log.close()

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal")
        log.append("g", BATCH, 0)
        log.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        # close() wrote a seal record (lsn 2); appends continue after it.
        assert reopened.append("g", BATCH, 0) == 3
        assert [r.lsn for r in reopened.records()] == [1, 3]
        reopened.close()

    def test_reopen_starts_a_fresh_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal")
        log.append("g", BATCH, 0)
        log.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.stats()["segments"] == 2
        reopened.close()

    def test_reopen_after_crash_before_first_record(self, tmp_path):
        # drop the handle without sealing: the directory holds exactly one
        # header-only segment — what a crash between segment creation and
        # the first append leaves behind.  Reopening must not collide with
        # it (regression: FileExistsError permanently blocked startup).
        WriteAheadLog(tmp_path / "wal", fsync="none")
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.append("g", BATCH, 0) == 1
        assert [r.lsn for r in reopened.records()] == [1]
        reopened.close()

    def test_header_only_next_segment_is_a_tolerated_crash_artifact(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", fsync="none")
        for _ in range(3):
            log.append("g", BATCH, 0)
        # a crash after writing the next segment's header, before any record
        (tmp_path / "wal" / "00000002.wal").write_bytes(
            struct.pack("<8sHH4x", SEGMENT_MAGIC, 1, 0)
        )
        reopened = WriteAheadLog(tmp_path / "wal")
        assert [r.lsn for r in reopened.records()] == [1, 2, 3]
        assert reopened.append("g", BATCH, 0) == 4
        reopened.close()

    def test_record_less_torn_segment_does_not_collide_on_reopen(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", fsync="none")
        for _ in range(3):
            log.append("g", BATCH, 0)
        # a crash mid-way through the *first* record of the next segment:
        # bigger than a bare header, but record-less — it survives the scan
        # (torn tail) without ever entering the LSN index
        (tmp_path / "wal" / "00000002.wal").write_bytes(
            struct.pack("<8sHH4x", SEGMENT_MAGIC, 1, 0) + b"\x01"
        )
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.stats()["active_segment"] == 3
        assert [r.lsn for r in reopened.records()] == [1, 2, 3]
        assert reopened.append("g", BATCH, 0) == 4
        reopened.close()

    def test_alien_file_in_wal_dir_rejected(self, tmp_path):
        (tmp_path / "wal").mkdir()
        (tmp_path / "wal" / "notes.wal").write_bytes(b"hello")
        with pytest.raises(WalError, match="alien file"):
            WriteAheadLog(tmp_path / "wal")


# ----------------------------------------------------------------------
# torn tails vs mid-log corruption
# ----------------------------------------------------------------------

def _segment_paths(directory):
    return sorted(directory.glob("*.wal"))


class TestCorruption:
    def _filled(self, tmp_path, count=3):
        log = WriteAheadLog(tmp_path / "wal", fsync="none")
        for _ in range(count):
            log.append("g", BATCH, 0)
        # simulate a crash: no close(), no seal record
        return tmp_path / "wal"

    def test_torn_tail_is_tolerated_and_measured(self, tmp_path):
        directory = self._filled(tmp_path)
        [segment] = _segment_paths(directory)
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-5])  # tear the last record mid-payload
        reopened = WriteAheadLog(directory)
        assert [r.lsn for r in reopened.records()] == [1, 2]
        assert reopened.torn_tail_bytes > 0
        # the torn lsn is reused by the fresh segment, keeping continuity
        assert reopened.append("g", BATCH, 0) == 3
        reopened.close()

    def test_mid_log_corruption_raises(self, tmp_path):
        directory = self._filled(tmp_path)
        [segment] = _segment_paths(directory)
        raw = bytearray(segment.read_bytes())
        # flip a byte inside the *first* record's payload: records after
        # it are still valid, so this cannot be a torn tail
        raw[30] ^= 0xFF
        segment.write_bytes(bytes(raw))
        with pytest.raises(WalError, match="corrupt record mid-log"):
            WriteAheadLog(directory)

    def test_lsn_gap_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", segment_bytes=256, fsync="none")
        for _ in range(8):
            log.append("g", BATCH, 0)
        log.close()
        segments = _segment_paths(tmp_path / "wal")
        assert len(segments) >= 3
        segments[1].unlink()  # a middle segment vanishes
        with pytest.raises(WalError, match="LSN gap"):
            WriteAheadLog(tmp_path / "wal")

    def test_truncated_segment_header(self, tmp_path):
        directory = self._filled(tmp_path)
        [segment] = _segment_paths(directory)
        segment.write_bytes(segment.read_bytes()[:7])
        with pytest.raises(WalError, match="truncated header"):
            WriteAheadLog(directory)

    def test_bad_segment_magic(self, tmp_path):
        directory = self._filled(tmp_path)
        [segment] = _segment_paths(directory)
        raw = bytearray(segment.read_bytes())
        raw[:8] = b"NOTAWAL!"
        segment.write_bytes(bytes(raw))
        with pytest.raises(WalError, match="bad magic"):
            WriteAheadLog(directory)

    def test_unsupported_format_version(self, tmp_path):
        directory = self._filled(tmp_path)
        [segment] = _segment_paths(directory)
        raw = bytearray(segment.read_bytes())
        struct.pack_into("<H", raw, 8, 99)
        segment.write_bytes(bytes(raw))
        with pytest.raises(WalError, match="unsupported WAL format version"):
            WriteAheadLog(directory)

    def test_empty_segment_file_is_a_tolerated_crash_artifact(self, tmp_path):
        directory = self._filled(tmp_path)
        # a crash between creating the next segment and writing its header
        (directory / "00000002.wal").write_bytes(b"")
        reopened = WriteAheadLog(directory)
        assert [r.lsn for r in reopened.records()] == [1, 2, 3]
        reopened.close()

    def test_segment_magic_constant(self):
        assert SEGMENT_MAGIC == b"EXPFWALS"
        assert len(SEGMENT_MAGIC) == 8


# ----------------------------------------------------------------------
# checkpoints + truncation
# ----------------------------------------------------------------------

class TestCheckpoints:
    def test_checkpoint_metadata_round_trip(self, wal):
        wal.write_checkpoint("g", lsn=5, graph_version=17, artifact="g.ckpt-000000000005")
        assert wal.read_checkpoints() == {
            "g": {
                "format": "repro.wal-checkpoint",
                "version": 1,
                "graph": "g",
                "lsn": 5,
                "graph_version": 17,
                "artifact": "g.ckpt-000000000005",
            }
        }
        assert wal.checkpoint_floor() == 5

    def test_floor_is_min_across_graphs(self, wal):
        wal.write_checkpoint("a", 9, 0, "a.ckpt-000000000009")
        wal.write_checkpoint("b", 4, 0, "b.ckpt-000000000004")
        assert wal.checkpoint_floor() == 4

    def test_no_checkpoints_no_floor(self, wal):
        assert wal.checkpoint_floor() is None

    def test_corrupt_checkpoint_metadata_raises(self, wal):
        (wal.directory / "checkpoint.g.json").write_text("{]")
        with pytest.raises(WalError, match="corrupt checkpoint metadata"):
            wal.read_checkpoints()

    def test_malformed_checkpoint_metadata_raises(self, wal):
        (wal.directory / "checkpoint.g.json").write_text(
            json.dumps({"format": "something-else"})
        )
        with pytest.raises(WalError, match="malformed checkpoint metadata"):
            wal.read_checkpoints()

    def test_truncate_deletes_only_covered_sealed_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", segment_bytes=256, fsync="none")
        for _ in range(8):
            log.append("g", BATCH, 0)
        before = log.stats()["segments"]
        assert before >= 3
        removed = log.truncate(log.last_lsn)  # active segment must survive
        assert removed == before - 1
        assert log.stats()["segments"] == 1
        # only records living in the (never-truncated) active segment remain
        assert len(log.records()) < 8
        log.close()

    def test_truncate_keeps_segments_above_floor(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal", segment_bytes=256, fsync="none")
        for _ in range(8):
            log.append("g", BATCH, 0)
        survivors = [r.lsn for r in log.records(after_lsn=3)]
        log.truncate(3)
        remaining = [r.lsn for r in log.records()]
        assert set(survivors) <= set(remaining)
        log.close()

    def test_checkpoint_artifact_name_is_lsn_stamped(self):
        assert checkpoint_artifact("team", 42) == "team.ckpt-000000000042"


class TestCheckpointer:
    @pytest.fixture
    def stack(self, tmp_path):
        store = GraphStore(tmp_path / "store")
        wal = WriteAheadLog(tmp_path / "wal", fsync="none")
        registry = SnapshotRegistry(store=store, wal=wal)
        checkpointer = Checkpointer(
            registry, wal, store, every_batches=2, background=False
        )
        registry.attach_checkpointer(checkpointer)
        yield registry, wal, store, checkpointer
        wal.close()

    def test_register_writes_a_baseline_checkpoint(self, stack):
        registry, wal, store, _cp = stack
        registry.register("g", small_graph())
        meta = wal.read_checkpoints()["g"]
        assert meta["lsn"] == 0
        assert store.has_graph(meta["artifact"])
        assert store.has_snapshot(meta["artifact"])

    def test_debounce_checkpoints_every_n_batches(self, stack):
        registry, wal, _store, cp = stack
        registry.register("g", small_graph())
        for index in range(4):
            registry.publish(
                "g", [NodeInsertion.with_attrs(f"x{index}")]
            )
        assert cp.stats()["checkpoints"] == 1 + 2  # baseline + two debounced
        assert wal.read_checkpoints()["g"]["lsn"] == 4

    def test_old_artifact_generations_are_garbage_collected(self, stack):
        registry, _wal, store, _cp = stack
        registry.register("g", small_graph())
        for index in range(4):
            registry.publish("g", [NodeInsertion.with_attrs(f"x{index}")])
        generations = [
            name for name in store.list_graphs() if name.startswith("g.ckpt-")
        ]
        assert generations == [checkpoint_artifact("g", 4)]

    def test_checkpoint_skips_when_nothing_new(self, stack):
        registry, _wal, _store, cp = stack
        registry.register("g", small_graph())
        assert cp.checkpoint("g") is None  # baseline already covers lsn 0

    def test_checkpoint_of_unknown_graph_is_none(self, stack):
        _registry, _wal, _store, cp = stack
        assert cp.checkpoint("ghost") is None

    def test_checkpoint_truncates_sealed_segments(self, tmp_path):
        store = GraphStore(tmp_path / "store")
        wal = WriteAheadLog(tmp_path / "wal", fsync="none", segment_bytes=256)
        registry = SnapshotRegistry(store=store, wal=wal)
        checkpointer = Checkpointer(
            registry, wal, store, every_batches=100, background=False
        )
        registry.attach_checkpointer(checkpointer)
        registry.register("g", small_graph())
        for index in range(8):
            registry.publish("g", [NodeInsertion.with_attrs(f"x{index}")])
        assert wal.stats()["segments"] > 1
        result = checkpointer.checkpoint("g")
        assert result["truncated_segments"] >= 1
        wal.close()

    def test_background_thread_checkpoints(self, tmp_path):
        import time

        store = GraphStore(tmp_path / "store")
        wal = WriteAheadLog(tmp_path / "wal", fsync="none")
        registry = SnapshotRegistry(store=store, wal=wal)
        checkpointer = Checkpointer(
            registry, wal, store, every_batches=2, background=True
        )
        registry.attach_checkpointer(checkpointer)
        registry.register("g", small_graph())
        for index in range(2):
            registry.publish("g", [NodeInsertion.with_attrs(f"x{index}")])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if wal.read_checkpoints()["g"]["lsn"] == 2:
                break
            time.sleep(0.01)
        assert wal.read_checkpoints()["g"]["lsn"] == 2
        checkpointer.close(final_checkpoint=False)
        wal.close()

    def test_close_writes_a_final_checkpoint(self, stack):
        registry, wal, _store, cp = stack
        registry.register("g", small_graph())
        registry.publish("g", [NodeInsertion.with_attrs("only")])
        cp.close(final_checkpoint=True)
        assert wal.read_checkpoints()["g"]["lsn"] == 1

    def test_every_bytes_debounce(self, tmp_path):
        store = GraphStore(tmp_path / "store")
        wal = WriteAheadLog(tmp_path / "wal", fsync="none")
        registry = SnapshotRegistry(store=store, wal=wal)
        checkpointer = Checkpointer(
            registry,
            wal,
            store,
            every_batches=10**9,
            every_bytes=1,  # any appended byte triggers a checkpoint
            background=False,
        )
        registry.attach_checkpointer(checkpointer)
        registry.register("g", small_graph())
        registry.publish("g", [NodeInsertion.with_attrs("only")])
        assert wal.read_checkpoints()["g"]["lsn"] == 1
        wal.close()

    def test_inline_storage_error_is_recorded_not_raised(self, stack):
        # regression: a plain StorageError from the store (not a WalError)
        # escaped _drain_dirty and failed an already-committed publish
        registry, wal, _store, cp = stack
        registry.register("g", small_graph())
        with armed("checkpoint.snapshot", action="storage-error"):
            for index in range(2):  # every_batches=2 → inline checkpoint
                registry.publish("g", [NodeInsertion.with_attrs(f"x{index}")])
        stats = cp.stats()
        assert stats["failures"] == 1
        assert "StorageError" in stats["last_error"]
        # durability held: the baseline checkpoint + WAL suffix still
        # cover both batches, and the next window checkpoints normally
        assert wal.read_checkpoints()["g"]["lsn"] == 0
        registry.publish("g", [NodeInsertion.with_attrs("x2")])
        assert wal.read_checkpoints()["g"]["lsn"] == 3

    def test_background_storage_error_keeps_the_thread_alive(self, tmp_path):
        # regression: an uncaught StorageError killed the checkpointer
        # thread, silently stopping checkpoints/truncation forever
        import time

        store = GraphStore(tmp_path / "store")
        wal = WriteAheadLog(tmp_path / "wal", fsync="none")
        registry = SnapshotRegistry(store=store, wal=wal)
        checkpointer = Checkpointer(
            registry, wal, store, every_batches=1, background=True
        )
        registry.attach_checkpointer(checkpointer)
        registry.register("g", small_graph())
        with armed("checkpoint.snapshot", action="storage-error"):
            registry.publish("g", [NodeInsertion.with_attrs("bad")])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if checkpointer.stats()["failures"] == 1:
                    break
                time.sleep(0.01)
        assert checkpointer.stats()["failures"] == 1
        # the thread survived: once the fault clears, the next publish is
        # checkpointed as usual
        registry.publish("g", [NodeInsertion.with_attrs("good")])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if wal.read_checkpoints()["g"]["lsn"] == 2:
                break
            time.sleep(0.01)
        assert wal.read_checkpoints()["g"]["lsn"] == 2
        checkpointer.close(final_checkpoint=False)
        wal.close()

    def test_validation(self, stack):
        registry, wal, store, _cp = stack
        with pytest.raises(WalError, match="every_batches"):
            Checkpointer(registry, wal, store, every_batches=0, background=False)
        with pytest.raises(WalError, match="every_bytes"):
            Checkpointer(
                registry, wal, store, every_bytes=0, background=False
            )


# ----------------------------------------------------------------------
# the wire codec the WAL stores batches in
# ----------------------------------------------------------------------

class TestEncodeUpdate:
    @pytest.mark.parametrize(
        "update",
        [
            EdgeInsertion("a", "b"),
            EdgeDeletion("a", "b"),
            NodeInsertion.with_attrs("n", kind="expert", score=3),
            NodeDeletion("n"),
            AttributeUpdate("n", "kind", "reviewer"),
        ],
    )
    def test_round_trip(self, update):
        [decoded] = decode_updates({"updates": [encode_update(update)]})
        assert decoded == update

    def test_unknown_type_rejected(self):
        from repro.errors import ServerError

        with pytest.raises(ServerError, match="cannot encode update"):
            encode_update("not an update")  # type: ignore[arg-type]
