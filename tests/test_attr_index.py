"""Attribute-index correctness: postings, resolution, maintenance.

The load-bearing property is at the bottom: index-backed candidate
generation must produce *exactly* the sets the scan path produces, for any
graph and any predicate shape — answered from postings, via a verified
superset, or by falling back to the shared scan.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.engine import QueryEngine
from repro.graph.digraph import Graph
from repro.graph.generators import collaboration_graph, random_digraph
from repro.graph.index import (
    AttributeIndex,
    batch_candidates,
    candidates_from_index,
    predicate_key,
)
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    random_updates,
)
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import AlwaysTrue, And, Cmp, In, Not, Or


def small_graph() -> Graph:
    return Graph.from_edges(
        [("bob", "dan"), ("dan", "eva")],
        nodes={
            "bob": {"field": "SA", "experience": 7},
            "dan": {"field": "SD", "experience": 3},
            "eva": {"field": "SD", "experience": 2},
        },
    )


class TestPostings:
    def test_lazy_build(self):
        index = AttributeIndex(small_graph())
        assert not index.is_built
        assert sorted(index.lookup("field", "SD")) == ["dan", "eva"]
        assert index.is_built
        assert index.stats()["builds"] == 1

    def test_unanswerable_predicates_never_trigger_a_build(self):
        """A range-only workload must not pay for postings it cannot use."""
        index = AttributeIndex(small_graph())
        assert index.resolve(Cmp("experience", ">=", 3)) is None
        assert index.resolve(Not(Cmp("field", "==", "SA"))) is None
        assert index.resolve(AlwaysTrue()) is None
        assert index.resolve(Cmp("tags", "==", ["a"])) is None  # unhashable value
        assert index.resolve(In("tags", [["a"], "x"])) is None  # unhashable choice
        assert not index.is_built
        assert index.stats()["builds"] == 0
        assert index.stats()["misses"] == 5

    def test_lookup_unknown_value_is_empty(self):
        index = AttributeIndex(small_graph())
        assert index.lookup("field", "XX") == frozenset()
        assert index.lookup("nope", 1) == frozenset()

    def test_unhashable_values_are_skipped(self):
        graph = small_graph()
        graph.set("bob", "tags", ["a", "b"])  # unhashable; cannot equal an atom
        index = AttributeIndex(graph)
        assert index.lookup("tags", "a") == frozenset()
        assert sorted(index.lookup("field", "SA")) == ["bob"]

    def test_lookup_scans_attrs_with_unhashable_values(self):
        """Regression: lookup() must not serve incomplete postings — an
        unhashable node value can equal a hashable query value."""
        graph = small_graph()
        graph.set("bob", "team", {1})
        index = AttributeIndex(graph)
        assert index.lookup("team", frozenset({1})) == frozenset({"bob"})
        assert index.lookup("team", [99]) == frozenset()  # unhashable query value

    def test_unhashable_predicate_values_fall_back_to_scan(self):
        """Regression: unhashable Cmp/In values must not be answered as
        'exact empty' from postings — a node can carry an equal unhashable
        value that only the scan path can see."""
        graph = small_graph()
        graph.set("bob", "tags", ["a", "b"])
        index = AttributeIndex(graph)
        for predicate in (
            Cmp("tags", "==", ["a", "b"]),
            In("tags", [["a", "b"], "x"]),
        ):
            assert index.resolve(predicate) is None
            table = batch_candidates(graph, [predicate], index=index)
            assert table[predicate_key(predicate)] == {"bob"}

    def test_unhashable_predicate_key_does_not_crash_matchers(self):
        """Regression: simulation_candidates routes through batch_candidates,
        which dict-keys predicates — an unhashable Cmp value must degrade to
        a scan, not raise TypeError."""
        graph = small_graph()
        graph.set("bob", "tags", ["a", "b"])
        pattern = Pattern()
        pattern.add_node("T", Cmp("tags", "==", ["a", "b"]))
        assert simulation_candidates(graph, pattern) == {"T": {"bob"}}
        assert candidates_from_index(graph, pattern, AttributeIndex(graph)) == {
            "T": {"bob"}
        }

    def test_len_and_repr(self):
        index = AttributeIndex(small_graph())
        assert len(index) == 0 and "unbuilt" in repr(index)
        index.lookup("field", "SA")
        assert len(index) > 0 and "postings" in repr(index)


class TestResolve:
    @pytest.fixture
    def index(self):
        return AttributeIndex(small_graph())

    def test_equality_is_exact(self, index):
        resolved = index.resolve(Cmp("field", "==", "SD"))
        assert resolved.exact and resolved.nodes == {"dan", "eva"}

    def test_membership_is_exact(self, index):
        resolved = index.resolve(In("field", ["SA", "SD"]))
        assert resolved.exact and resolved.nodes == {"bob", "dan", "eva"}

    def test_and_of_equalities_is_exact(self, index):
        resolved = index.resolve(And(Cmp("field", "==", "SD"), Cmp("experience", "==", 3)))
        assert resolved.exact and resolved.nodes == {"dan"}

    def test_or_of_equalities_is_exact(self, index):
        resolved = index.resolve(Or(Cmp("field", "==", "SA"), Cmp("experience", "==", 2)))
        assert resolved.exact and resolved.nodes == {"bob", "eva"}

    def test_range_falls_back(self, index):
        assert index.resolve(Cmp("experience", ">=", 3)) is None

    def test_negation_falls_back(self, index):
        assert index.resolve(Not(Cmp("field", "==", "SD"))) is None
        assert index.resolve(Cmp("field", "!=", "SD")) is None

    def test_always_true_falls_back(self, index):
        assert index.resolve(AlwaysTrue()) is None

    def test_mixed_and_yields_superset(self, index):
        resolved = index.resolve(And(Cmp("field", "==", "SD"), Cmp("experience", ">=", 3)))
        assert resolved is not None and not resolved.exact
        assert resolved.nodes == {"dan", "eva"}  # field filter only

    def test_or_with_unindexable_branch_falls_back(self, index):
        assert index.resolve(Or(Cmp("field", "==", "SA"), Cmp("experience", ">=", 3))) is None


class TestCandidates:
    def test_superset_is_verified(self):
        graph = small_graph()
        index = AttributeIndex(graph)
        predicate = And(Cmp("field", "==", "SD"), Cmp("experience", ">=", 3))
        table = batch_candidates(graph, [predicate], index=index)
        assert table[predicate.key()] == {"dan"}

    def test_shared_scan_covers_unindexable_predicates(self):
        graph = small_graph()
        index = AttributeIndex(graph)
        a, b = Cmp("experience", ">=", 3), Not(Cmp("field", "==", "SA"))
        table = batch_candidates(graph, [a, b], index=index)
        assert table[a.key()] == {"bob", "dan"}
        assert table[b.key()] == {"dan", "eva"}

    def test_duplicate_predicates_computed_once(self):
        graph = small_graph()
        table = batch_candidates(graph, [Cmp("field", "==", "SD")] * 3)
        assert len(table) == 1

    def test_fresh_sets_per_pattern_node(self):
        graph = small_graph()
        pattern = Pattern()
        pattern.add_node("A", 'field == "SD"')
        pattern.add_node("B", 'field == "SD"')
        candidates = candidates_from_index(graph, pattern, AttributeIndex(graph))
        candidates["A"].discard("dan")
        assert "dan" in candidates["B"]


class TestMaintenance:
    def test_on_update_keeps_postings_fresh(self):
        graph = small_graph()
        index = AttributeIndex(graph)
        index.lookup("field", "SD")  # force build
        for update in (
            NodeInsertion.with_attrs("pat", field="SD", experience=9),
            EdgeInsertion("bob", "pat"),
            AttributeUpdate("dan", "field", "BA"),
            EdgeDeletion("bob", "dan"),
            NodeDeletion("eva"),
        ):
            update.apply(graph)
            index.on_update(update)
        assert sorted(index.lookup("field", "SD")) == ["pat"]
        assert sorted(index.lookup("field", "BA")) == ["dan"]
        assert index.lookup("field", "ST") == frozenset()
        # Incremental maintenance, not rebuilds:
        assert index.stats()["rebuilds"] == 0

    def test_out_of_band_mutation_before_engine_update_not_masked(self):
        """Regression: an out-of-band graph.set() followed by an unrelated
        engine-routed update must not be silently absorbed — the version
        gap forces a rebuild so query results stay correct."""
        graph = small_graph()
        engine = QueryEngine()
        engine.register_graph("g", graph)
        pattern = Pattern()
        pattern.add_node("SA", 'field == "SA"')
        assert engine.evaluate("g", pattern).relation.matches_of("SA") == {"bob"}
        graph.set("dan", "field", "SA")  # behind the engine's back …
        engine.update_graph("g", [EdgeInsertion("bob", "eva")])  # … then routed
        relation = engine.evaluate("g", pattern, use_cache=False).relation
        assert relation.matches_of("SA") == {"bob", "dan"}
        assert engine.attr_index_stats("g")["rebuilds"] == 1

    def test_equality_with_unhashable_node_value_scans(self):
        """Regression: a hashable query constant can equal an unhashable
        node value ({1} == frozenset({1})); postings cannot see such nodes,
        so equality on that attribute must decline to the scan path."""
        graph = small_graph()
        graph.set("bob", "team", {1})  # set: unhashable, not filed
        graph.set("dan", "team", "core")
        index = AttributeIndex(graph)
        predicate = Cmp("team", "==", frozenset({1}))
        assert index.resolve(predicate) is None
        table = batch_candidates(graph, [predicate], index=index)
        assert table[predicate_key(predicate)] == {"bob"}
        # Fully-hashable attrs keep exact resolution.
        assert index.resolve(Cmp("field", "==", "SA")).exact

    def test_out_of_band_mutation_triggers_rebuild(self):
        graph = small_graph()
        index = AttributeIndex(graph)
        assert sorted(index.lookup("field", "SA")) == ["bob"]
        graph.set("dan", "field", "SA")  # behind the engine's back
        assert sorted(index.lookup("field", "SA")) == ["bob", "dan"]
        assert index.stats()["rebuilds"] == 1

    def test_refresh_forces_rebuild(self):
        graph = small_graph()
        index = AttributeIndex(graph)
        index.lookup("field", "SA")
        # Mutating the live attrs dict bypasses the version counter …
        graph.attrs("dan")["field"] = "SA"  # repro-lint: disable=version-bump-discipline -- deliberately simulates an out-of-band write to exercise refresh()
        assert sorted(index.lookup("field", "SA")) == ["bob"]  # stale, by contract
        index.refresh()  # … so refresh() is the documented escape hatch.
        assert sorted(index.lookup("field", "SA")) == ["bob", "dan"]

    def test_graph_version_counts_mutations(self):
        graph = Graph()
        v0 = graph.version
        graph.add_node("a", x=1)
        graph.add_node("b")
        graph.add_edge("a", "b")
        graph.set("a", "x", 2)
        graph.remove_edge("a", "b")
        graph.remove_node("b")
        assert graph.version > v0
        before = graph.version
        graph.add_node("a")  # already present, no attrs: not a mutation
        assert graph.version == before


class TestEngineIntegration:
    def test_engine_maintains_index_through_updates(self):
        graph = collaboration_graph(120, seed=3)
        engine = QueryEngine()
        engine.register_graph("g", graph)
        pattern = (
            PatternBuilder("q")
            .node("SA", "experience >= 5", field="SA")
            .node("SD", field="SD")
            .edge("SA", "SD", 2)
            .build()
        )
        engine.evaluate("g", pattern)  # builds the index
        assert engine.attr_index_stats("g")["built"] == 1
        updates = random_updates(graph.copy(), 25, seed=7)
        engine.update_graph("g", updates)
        # After engine-routed updates the index answers must equal a scan.
        index_candidates = candidates_from_index(
            graph, pattern, engine._registered["g"].attr_index
        )
        assert index_candidates == simulation_candidates(graph, pattern)
        assert engine.attr_index_stats("g")["rebuilds"] == 0

    def test_attribute_updates_change_index_backed_results(self):
        graph = small_graph()
        engine = QueryEngine()
        engine.register_graph("g", graph)
        pattern = Pattern()
        pattern.add_node("SD", 'field == "SD"')
        assert engine.evaluate("g", pattern).relation.matches_of("SD") == {"dan", "eva"}
        engine.update_graph("g", [AttributeUpdate("eva", "field", "ST")])
        assert engine.evaluate("g", pattern).relation.matches_of("SD") == {"dan"}

    def test_disable_and_enable(self):
        engine = QueryEngine()
        engine.register_graph("g", small_graph())
        engine.disable_attr_index("g")
        assert engine.attr_index_stats("g") is None
        pattern = Pattern()
        pattern.add_node("SD", 'field == "SD"')
        assert engine.evaluate("g", pattern).stats["candidate_source"] == "scan"
        engine.enable_attr_index("g")
        assert engine.attr_index_stats("g") is not None


# ----------------------------------------------------------------------
# property test: index-backed candidates == scan-backed candidates
# ----------------------------------------------------------------------

LABELS = ("A", "B", "C")


@st.composite
def predicates(draw, depth=2):
    """Random predicates spanning every resolution class."""
    if depth == 0:
        leaf = draw(st.integers(min_value=0, max_value=4))
        if leaf == 0:
            return Cmp("label", "==", draw(st.sampled_from(LABELS)))
        if leaf == 1:
            return Cmp("x", draw(st.sampled_from(["==", ">=", "<", "!="])),
                       draw(st.integers(min_value=0, max_value=9)))
        if leaf == 2:
            return In("label", draw(st.lists(st.sampled_from(LABELS), min_size=1,
                                             max_size=3, unique=True)))
        if leaf == 3:
            return AlwaysTrue()
        return Not(Cmp("label", "==", draw(st.sampled_from(LABELS))))
    kind = draw(st.integers(min_value=0, max_value=2))
    if kind == 0:
        return draw(predicates(depth=0))
    parts = draw(st.lists(predicates(depth=depth - 1), min_size=1, max_size=3))
    return And(*parts) if kind == 1 else Or(*parts)


@st.composite
def indexed_patterns(draw, max_nodes=3):
    pattern = Pattern()
    for i in range(draw(st.integers(min_value=1, max_value=max_nodes))):
        pattern.add_node(f"P{i}", draw(predicates()))
    return pattern


@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=10_000),
    indexed_patterns(),
)
@settings(max_examples=150, deadline=None)
def test_index_candidates_equal_scan_candidates(nodes, edges, seed, pattern):
    graph = random_digraph(nodes, min(edges, nodes * (nodes - 1)), seed=seed)
    index = AttributeIndex(graph)
    assert candidates_from_index(graph, pattern, index) == simulation_candidates(
        graph, pattern
    )


@pytest.mark.parametrize("size,seed", [(200, 0), (200, 1), (500, 2)])
def test_index_candidates_equal_scan_on_collab_graphs(size, seed):
    graph = collaboration_graph(size, seed=seed)
    pattern = (
        PatternBuilder("team")
        .node("SA", "experience >= 5", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("ST", field="ST")
        .edge("SA", "SD", 2)
        .edge("SD", "ST", 2)
        .build()
    )
    index = AttributeIndex(graph)
    assert candidates_from_index(graph, pattern, index) == simulation_candidates(
        graph, pattern
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_index_stays_consistent_under_update_batches(seed):
    """Invalidation/rebuild after Updates: engine-routed batches keep the
    index's answers equal to a fresh scan."""
    graph = random_digraph(12, 20, seed=seed)
    engine = QueryEngine()
    engine.register_graph("g", graph)
    pattern = Pattern()
    pattern.add_node("P", 'label == "L0"')
    pattern.add_node("Q", "x >= 5")
    engine.evaluate("g", pattern)
    updates = random_updates(graph.copy(), 10, seed=seed + 1)
    engine.update_graph("g", updates)
    entry = engine._registered["g"]
    assert candidates_from_index(graph, pattern, entry.attr_index) == (
        simulation_candidates(graph, pattern)
    )
