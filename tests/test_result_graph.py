"""Unit tests for result-graph construction."""

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.errors import EvaluationError
from repro.matching.base import MatchRelation
from repro.matching.bounded import match_bounded
from repro.matching.result_graph import ResultGraph, build_result_graph
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


@pytest.fixture(scope="module")
def fig1_result():
    return match_bounded(paper_graph(), paper_pattern())


class TestFig1ResultGraph:
    def test_expected_edges_with_weights(self, fig1_result):
        rg = fig1_result.result_graph()
        expected = {
            ("Bob", "Dan", 1), ("Bob", "Mat", 1), ("Bob", "Pat", 2),
            ("Bob", "Jean", 3), ("Walt", "Pat", 2), ("Walt", "Jean", 2),
            ("Dan", "Eva", 1), ("Mat", "Eva", 1), ("Pat", "Eva", 1),
            ("Jean", "Eva", 1),
        }
        assert set(rg.edges()) == expected

    def test_state_and_bfs_paths_agree(self, fig1_result):
        """Building from matcher state or by fresh BFS must be identical."""
        from_state = fig1_result.result_graph()
        from_bfs = build_result_graph(
            fig1_result.graph, fig1_result.pattern, fig1_result.relation, state=None
        )
        assert set(from_state.edges()) == set(from_bfs.edges())
        assert set(from_state.nodes()) == set(from_bfs.nodes())

    def test_matched_pattern_nodes(self, fig1_result):
        rg = fig1_result.result_graph()
        assert rg.matched_pattern_nodes("Bob") == frozenset({"SA"})
        assert rg.matched_pattern_nodes("Eva") == frozenset({"ST"})

    def test_weight_lookup(self, fig1_result):
        rg = fig1_result.result_graph()
        assert rg.weight("Bob", "Jean") == 3
        assert rg.weight("Bob", "Eva") is None  # no SA->ST pattern edge

    def test_node_attrs_passthrough(self, fig1_result):
        rg = fig1_result.result_graph()
        assert rg.node_attrs("Bob")["experience"] == 7

    def test_counts(self, fig1_result):
        rg = fig1_result.result_graph()
        assert rg.num_nodes == 7
        assert rg.num_edges == 10


class TestConstruction:
    def test_empty_relation_gives_empty_result_graph(self):
        g = make_labelled_graph([], {"a": "A"})
        q = PatternBuilder().node("A", 'label == "Z"').build()
        relation = MatchRelation.from_sets(q, {"A": set()})
        rg = build_result_graph(g, q, relation)
        assert rg.num_nodes == 0
        assert rg.num_edges == 0

    def test_node_matching_two_pattern_nodes(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "A"})
        q = (
            PatternBuilder()
            .node("X", 'label == "A"')
            .node("Y", 'label == "A"')
            .edge("X", "Y", None)
            .edge("Y", "Y", None)
            .build()
        )
        # b fails (no outgoing edge) for both X and Y... use a cycle instead.
        g2 = make_labelled_graph([("a", "b"), ("b", "a")], {"a": "A", "b": "A"})
        relation = match_bounded(g2, q).relation
        rg = build_result_graph(g2, q, relation)
        assert rg.matched_pattern_nodes("a") == frozenset({"X", "Y"})

    def test_min_weight_kept_when_edges_overlap(self):
        # Two pattern edges inducing the same matched pair keep one weight —
        # the shortest distance, which is the same for both.
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        q = (
            PatternBuilder()
            .node("X", 'label == "A"')
            .node("Y", 'label == "B"')
            .node("Y2", 'label == "B"')
            .edge("X", "Y", 1)
            .edge("X", "Y2", 3)
            .build()
        )
        relation = match_bounded(g, q).relation
        rg = build_result_graph(g, q, relation)
        assert rg.weight("a", "b") == 1
        assert rg.num_edges == 1

    def test_rejects_nonpositive_weight(self):
        rg = ResultGraph(make_labelled_graph([], {"a": "A"}), paper_pattern())
        rg._add_node("a", "SA")
        with pytest.raises(EvaluationError):
            rg._add_edge("a", "a", 0)

    def test_adjacency_views_are_consistent(self, fig1_result):
        rg = fig1_result.result_graph()
        for source, target, weight in rg.edges():
            assert rg.out_adjacency()[source][target] == weight
            assert rg.in_adjacency()[target][source] == weight

    def test_repr(self, fig1_result):
        assert "7 nodes" in repr(fig1_result.result_graph())
