"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    FIELDS,
    CollaborationConfig,
    collaboration_graph,
    degree_histogram,
    random_digraph,
    twitter_like_graph,
)


class TestCollaborationGraph:
    def test_node_count(self):
        assert collaboration_graph(120, seed=1).num_nodes == 120

    def test_deterministic_with_seed(self):
        assert collaboration_graph(80, seed=5) == collaboration_graph(80, seed=5)

    def test_different_seeds_differ(self):
        assert collaboration_graph(80, seed=5) != collaboration_graph(80, seed=6)

    def test_attribute_schema(self):
        g = collaboration_graph(60, seed=2)
        for node in g.nodes():
            attrs = g.attrs(node)
            assert attrs["field"] in FIELDS
            assert attrs["specialty"] in FIELDS[attrs["field"]][1]
            assert 1 <= attrs["experience"] <= 15

    def test_leads_exist_and_are_senior(self):
        g = collaboration_graph(100, seed=3)
        leads = [v for v in g.nodes() if g.get(v, "field") in ("SA", "PM")]
        assert leads
        assert all(g.get(v, "experience") >= 4 for v in leads)

    def test_has_reasonable_density(self):
        g = collaboration_graph(200, seed=4)
        assert g.num_edges >= g.num_nodes  # not a forest of isolated nodes

    def test_tiny_population_promotes_a_lead(self):
        # With an all-SD field distribution there would be no lead to run teams.
        cfg = CollaborationConfig(num_people=5, field_weights={"SD": 1.0})
        g = collaboration_graph(5, seed=1, config=cfg)
        assert any(g.get(v, "field") in ("SA", "PM") for v in g.nodes())

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            collaboration_graph(1)

    def test_custom_name(self):
        assert collaboration_graph(30, seed=0, name="xyz").name == "xyz"


class TestTwitterLikeGraph:
    def test_node_count_and_determinism(self):
        g1 = twitter_like_graph(150, seed=9)
        g2 = twitter_like_graph(150, seed=9)
        assert g1.num_nodes == 150
        assert g1 == g2

    def test_skewed_out_degree(self):
        g = twitter_like_graph(800, seed=1)
        degrees = sorted((g.out_degree(v) for v in g.nodes()), reverse=True)
        # hubs exist, and most nodes are pure audience
        assert degrees[0] >= 10
        zero = sum(1 for d in degrees if d == 0)
        assert zero > 0.3 * g.num_nodes

    def test_attribute_schema(self):
        g = twitter_like_graph(100, seed=2)
        assert all(g.get(v, "field") in FIELDS for v in g.nodes())

    def test_invalid_parameters_raise(self):
        with pytest.raises(GraphError):
            twitter_like_graph(1)
        with pytest.raises(GraphError):
            twitter_like_graph(10, attach=0)
        with pytest.raises(GraphError):
            twitter_like_graph(10, promote_prob=1.5)


class TestRandomDigraph:
    def test_exact_counts(self):
        g = random_digraph(20, 50, seed=3)
        assert g.num_nodes == 20
        assert g.num_edges == 50

    def test_no_self_loops(self):
        g = random_digraph(15, 60, seed=4)
        assert all(s != t for s, t in g.edges())

    def test_labels_in_range(self):
        g = random_digraph(30, 40, num_labels=4, seed=5)
        labels = {g.get(v, "label") for v in g.nodes()}
        assert labels <= {"L0", "L1", "L2", "L3"}

    def test_x_attribute_in_range(self):
        g = random_digraph(30, 40, seed=6)
        assert all(0 <= g.get(v, "x") <= 9 for v in g.nodes())

    def test_determinism(self):
        assert random_digraph(12, 30, seed=7) == random_digraph(12, 30, seed=7)

    def test_too_many_edges_raises(self):
        with pytest.raises(GraphError, match="too many edges"):
            random_digraph(3, 7)

    def test_zero_nodes_raises(self):
        with pytest.raises(GraphError):
            random_digraph(0, 0)


class TestDegreeHistogram:
    def test_in_histogram_sums_to_node_count(self):
        g = random_digraph(25, 60, seed=8)
        histogram = degree_histogram(g, "in")
        assert sum(histogram.values()) == 25

    def test_out_histogram(self):
        g = twitter_like_graph(60, seed=1)
        histogram = degree_histogram(g, "out")
        assert sum(histogram.values()) == 60

    def test_bad_direction_raises(self):
        with pytest.raises(GraphError):
            degree_histogram(random_digraph(5, 5, seed=1), "sideways")
