"""Unit tests for the social-impact ranking function and top-K."""

import math

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.errors import RankingError
from repro.matching.bounded import match_bounded
from repro.ranking.social_impact import (
    rank_detail,
    rank_matches,
    social_impact_rank,
    top_k,
)
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


@pytest.fixture(scope="module")
def fig1_rg():
    return match_bounded(paper_graph(), paper_pattern()).result_graph()


def simple_result_graph(edges, labels, bound=3, out_label="A"):
    """Match a 2-node pattern and return its result graph."""
    graph = make_labelled_graph(edges, labels)
    pattern = (
        PatternBuilder()
        .node("A", 'label == "A"', output=(out_label == "A"))
        .node("B", 'label == "B"', output=(out_label == "B"))
        .edge("A", "B", bound)
        .build()
    )
    return match_bounded(graph, pattern).result_graph()


class TestRankFormula:
    def test_fig1_values(self, fig1_rg):
        assert social_impact_rank(fig1_rg, "Bob") == pytest.approx(9 / 5)
        assert social_impact_rank(fig1_rg, "Walt") == pytest.approx(7 / 3)

    def test_ancestors_count_toward_rank(self, fig1_rg):
        # Eva is reached by everyone; she has 6 ancestors and no descendants.
        detail = rank_detail(fig1_rg, "Eva")
        assert not detail.descendants
        assert len(detail.ancestors) == 6

    def test_unknown_node_raises(self, fig1_rg):
        with pytest.raises(RankingError):
            social_impact_rank(fig1_rg, "Nobody")

    def test_isolated_match_ranks_infinite(self):
        # Pattern with a single node: matches have no witness edges at all.
        graph = make_labelled_graph([], {"a": "A", "a2": "A"})
        pattern = PatternBuilder().node("A", 'label == "A"', output=True).build()
        rg = match_bounded(graph, pattern).result_graph()
        assert social_impact_rank(rg, "a") == math.inf

    def test_rank_uses_weighted_distances(self):
        # a reaches b1 directly (1) and b2 through two hops (2).
        rg = simple_result_graph(
            [("a", "b1"), ("a", "x"), ("x", "b2")],
            {"a": "A", "b1": "B", "b2": "B", "x": "M"},
        )
        assert social_impact_rank(rg, "a") == pytest.approx((1 + 2) / 2)

    def test_impact_set_size(self, fig1_rg):
        assert rank_detail(fig1_rg, "Bob").impact_set_size == 5


class TestRankMatches:
    def test_sorted_best_first(self, fig1_rg):
        ranked = rank_matches(fig1_rg)
        assert [r.node for r in ranked] == ["Bob", "Walt"]
        assert ranked[0].rank <= ranked[1].rank

    def test_explicit_pattern_node(self, fig1_rg):
        ranked = rank_matches(fig1_rg, pattern_node="SD")
        assert {r.node for r in ranked} == {"Dan", "Mat", "Pat"}

    def test_requires_output_node(self):
        rg = simple_result_graph([("a", "b")], {"a": "A", "b": "B"}, out_label=None)
        with pytest.raises(RankingError, match="output"):
            rank_matches(rg)

    def test_unknown_pattern_node_raises(self, fig1_rg):
        with pytest.raises(RankingError, match="unknown pattern node"):
            rank_matches(fig1_rg, pattern_node="XX")

    def test_deterministic_tie_break_by_node_id(self):
        # Two A-matches with identical structure tie; order must be by id.
        rg = simple_result_graph(
            [("a2", "b"), ("a1", "b")], {"a1": "A", "a2": "A", "b": "B"}
        )
        ranked = rank_matches(rg, pattern_node="A")
        assert [r.node for r in ranked] == ["a1", "a2"]


class TestTopK:
    def test_top_one_is_bob(self, fig1_rg):
        assert [r.node for r in top_k(fig1_rg, 1)] == ["Bob"]

    def test_k_larger_than_matches_returns_all(self, fig1_rg):
        assert len(top_k(fig1_rg, 10)) == 2

    def test_k_must_be_positive(self, fig1_rg):
        with pytest.raises(RankingError):
            top_k(fig1_rg, 0)

    def test_top_k_prefix_of_full_ranking(self, fig1_rg):
        full = rank_matches(fig1_rg)
        assert top_k(fig1_rg, 1) == full[:1]

    def test_ranked_match_carries_attrs(self, fig1_rg):
        best = top_k(fig1_rg, 1)[0]
        assert best.attrs["field"] == "SA"
        assert best.attrs["experience"] == 7
