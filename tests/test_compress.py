"""Unit tests for compression construction and decompression."""

import pytest

from repro.compression.compress import CompressionSpec, compress
from repro.compression.decompress import decompress_relation, decompress_result
from repro.errors import CompressionError
from repro.graph.generators import collaboration_graph, random_digraph, twitter_like_graph
from repro.matching.base import MatchRelation
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


def label_query(bound=2):
    return (
        PatternBuilder()
        .node("A", 'label == "A"')
        .node("B", 'label == "B"')
        .edge("A", "B", bound)
        .build()
    )


class TestSpec:
    def test_empty_attrs_rejected(self):
        with pytest.raises(CompressionError):
            CompressionSpec(attrs=(), method="bisimulation")

    def test_unknown_method_rejected(self):
        with pytest.raises(CompressionError):
            CompressionSpec(attrs=("label",), method="magic")


class TestQuotientStructure:
    def test_members_partition_nodes(self):
        g = collaboration_graph(80, seed=1)
        compressed = compress(g, attrs=("field",))
        seen = [node for members in compressed.members.values() for node in members]
        assert sorted(seen) == sorted(g.nodes())

    def test_class_of_every_node(self):
        g = collaboration_graph(50, seed=2)
        compressed = compress(g, attrs=("field",))
        for node in g.nodes():
            assert node in compressed.members[compressed.class_of(node)]

    def test_class_of_unknown_raises(self):
        compressed = compress(collaboration_graph(20, seed=3), attrs=("field",))
        with pytest.raises(CompressionError):
            compressed.class_of("nobody")

    def test_quotient_carries_label_attrs_and_size(self):
        g = make_labelled_graph([], {"x": "A", "y": "A", "z": "B"})
        compressed = compress(g, attrs=("label",))
        cls = compressed.class_of("x")
        assert compressed.quotient.get(cls, "label") == "A"
        assert compressed.quotient.get(cls, "_size") == 2

    def test_quotient_edges_projected(self):
        g = make_labelled_graph(
            [("x", "c"), ("y", "c")], {"x": "A", "y": "A", "c": "C"}
        )
        compressed = compress(g, attrs=("label",))
        assert compressed.quotient.num_edges == 1

    def test_never_larger_than_original(self):
        for seed in range(4):
            g = random_digraph(40, 90, num_labels=2, seed=seed)
            compressed = compress(g, attrs=("label",))
            assert compressed.quotient.num_nodes <= g.num_nodes
            assert compressed.quotient.num_edges <= g.num_edges

    def test_reduction_metrics_bounds(self):
        g = twitter_like_graph(400, seed=4)
        compressed = compress(g, attrs=("field",))
        assert 0 <= compressed.node_reduction < 1
        assert 0 <= compressed.edge_reduction <= 1
        assert 0 <= compressed.size_reduction < 1

    def test_twitter_graph_compresses_substantially(self):
        """The E7 shape: a social graph loses a large fraction of its size."""
        g = twitter_like_graph(1500, seed=5)
        compressed = compress(g, attrs=("field",))
        assert compressed.size_reduction > 0.4

    def test_simulation_method_never_finer(self):
        g = random_digraph(40, 80, num_labels=2, seed=6)
        bis = compress(g, attrs=("label",), method="bisimulation")
        sim = compress(g, attrs=("label",), method="simulation")
        assert sim.quotient.num_nodes <= bis.quotient.num_nodes


class TestCompatibility:
    def test_compatible_when_attrs_covered(self):
        g = collaboration_graph(30, seed=7)
        compressed = compress(g, attrs=("field", "experience"))
        q = PatternBuilder().node("A", 'field == "SA", experience >= 5').build()
        assert compressed.is_compatible(q)

    def test_incompatible_when_pattern_reads_more(self):
        g = collaboration_graph(30, seed=8)
        compressed = compress(g, attrs=("field",))
        q = PatternBuilder().node("A", 'field == "SA", experience >= 5').build()
        assert not compressed.is_compatible(q)
        with pytest.raises(CompressionError, match="experience"):
            compressed.require_compatible(q)


class TestQueryPreservation:
    @pytest.mark.parametrize("method", ["bisimulation", "simulation"])
    @pytest.mark.parametrize("seed", range(5))
    def test_bounded_results_identical(self, method, seed):
        g = random_digraph(25, 60, num_labels=2, seed=seed)
        q = label_query_for_random(bound=2)
        compressed = compress(g, attrs=("label",), method=method)
        direct = match_bounded(g, q).relation
        on_quotient = match_bounded(compressed.quotient, q).relation
        assert decompress_relation(on_quotient, compressed) == direct

    @pytest.mark.parametrize("method", ["bisimulation", "simulation"])
    def test_plain_simulation_results_identical(self, method):
        g = random_digraph(30, 70, num_labels=3, seed=11)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 1)
            .build()
        )
        compressed = compress(g, attrs=("label",), method=method)
        direct = match_simulation(g, q).relation
        on_quotient = match_simulation(compressed.quotient, q).relation
        assert decompress_relation(on_quotient, compressed) == direct

    def test_unbounded_pattern_preserved(self):
        g = random_digraph(25, 55, num_labels=2, seed=12)
        q = label_query_for_random(bound=None)
        compressed = compress(g, attrs=("label",))
        direct = match_bounded(g, q).relation
        on_quotient = match_bounded(compressed.quotient, q).relation
        assert decompress_relation(on_quotient, compressed) == direct

    def test_decompress_result_retargets_original(self):
        g = random_digraph(20, 45, num_labels=2, seed=13)
        q = label_query_for_random(bound=2)
        compressed = compress(g, attrs=("label",))
        on_quotient = match_bounded(compressed.quotient, q)
        full = decompress_result(on_quotient, compressed)
        assert full.graph is g
        assert full.stats["route"] == "compressed"
        # The result graph built from the decompressed result must use true
        # distances of the original graph.
        for source, target, weight in full.result_graph().edges():
            from repro.graph.distance import distance

            assert distance(g, source, target) == weight

    def test_decompress_unknown_class_raises(self):
        g = make_labelled_graph([], {"x": "A"})
        compressed = compress(g, attrs=("label",))
        bogus = MatchRelation({"A": {"not-a-class"}})
        with pytest.raises(CompressionError):
            decompress_relation(bogus, compressed)


def label_query_for_random(bound):
    return (
        PatternBuilder()
        .node("A", 'label == "L0"')
        .node("B", 'label == "L1"')
        .edge("A", "B", bound)
        .build()
    )
