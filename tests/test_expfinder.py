"""Unit tests for the ExpFinder facade."""

import pytest

from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
from repro.errors import EvaluationError
from repro.expfinder import ExpFinder
from repro.graph.io import save_graph
from repro.incremental.updates import EdgeInsertion


@pytest.fixture
def finder() -> ExpFinder:
    f = ExpFinder()
    f.add_graph("fig1", paper_graph())
    return f


class TestWorkflow:
    def test_find_experts(self, finder):
        ranked = finder.find_experts("fig1", paper_pattern(), k=1)
        assert ranked[0].node == "Bob"

    def test_find_experts_other_metric(self, finder):
        scored = finder.find_experts("fig1", paper_pattern(), k=1, metric="closeness")
        assert scored[0][0] == "Bob"

    def test_match_and_views(self, finder):
        result = finder.match("fig1", paper_pattern())
        assert "SA" in finder.roll_up(result)
        assert "-[3]-> Jean" in finder.drill_down(result, "Bob")

    def test_pattern_from_text(self):
        pattern = ExpFinder.pattern_from_text(
            'node A* : field == "SA"\nnode B : field == "SD"\nedge A -> B : 2\n'
        )
        assert pattern.output_node == "A"

    def test_summary_and_who_is(self, finder):
        assert "9 nodes" in finder.summary("fig1")
        assert "experience: 7" in finder.who_is("fig1", "Bob")

    def test_pin_update_delta(self, finder):
        query = paper_pattern()
        finder.pin("fig1", query)
        summary = finder.update("fig1", [EdgeInsertion(*EDGE_E1)])
        delta = summary["pinned_deltas"][query.canonical_key()]
        assert delta["added"] == {("SD", "Fred")}

    def test_compress_through_facade(self, finder):
        compressed = finder.compress("fig1", attrs=("field",))
        assert compressed.quotient.num_nodes <= 9

    def test_explain(self, finder):
        assert finder.explain("fig1", paper_pattern()).route == "direct"

    def test_ranking_table_rejects_tuples(self, finder):
        scored = finder.find_experts("fig1", paper_pattern(), k=1, metric="degree")
        with pytest.raises(EvaluationError):
            finder.ranking_table(scored)  # type: ignore[arg-type]


class TestStorageIntegration:
    def test_workdir_save_and_graph_file(self, tmp_path):
        finder = ExpFinder(workdir=tmp_path / "store")
        finder.add_graph("fig1", paper_graph())
        finder.save("fig1")
        assert (tmp_path / "store" / "graphs" / "fig1.json").exists()

    def test_load_graph_file(self, tmp_path):
        path = save_graph(paper_graph(), tmp_path / "g.json")
        finder = ExpFinder()
        graph = finder.load_graph_file("fig1", path)
        assert graph.num_nodes == 9
        assert finder.graph("fig1") is graph


class TestOracleFacade:
    def test_enable_oracle_passthrough(self):
        from repro.datasets.paper_example import paper_graph, paper_pattern
        from repro.expfinder import ExpFinder

        finder = ExpFinder()
        finder.add_graph("fig1", paper_graph())
        assert finder.oracle_stats("fig1") is None
        finder.enable_oracle("fig1")
        assert finder.oracle_stats("fig1")["state"] == "cold"
        result = finder.match("fig1", paper_pattern(), use_cache=False,
                              cache_result=False)
        assert result.is_match
        assert finder.oracle_stats("fig1")["state"] == "warm"
