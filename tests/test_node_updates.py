"""Tests for node-level updates (attribute changes, node insert/delete).

An extension beyond the paper's edge-only ΔG, supporting the demo GUI's
Graph Editor ("update and maintain data graphs").  The contract is the same
as for edge updates: incremental maintenance must coincide with batch
recomputation on the updated graph, for matchers and for the maintained
compression alike.
"""

import pytest

from repro.compression.compress import compress
from repro.compression.decompress import decompress_relation
from repro.compression.maintain import MaintainedCompression
from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.engine import QueryEngine
from repro.errors import UpdateError
from repro.graph.digraph import Graph
from repro.graph.generators import random_digraph
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    decompose,
)
from repro.matching.bounded import match_bounded
from repro.matching.reference import naive_bounded, naive_simulation
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


class TestUpdateValues:
    def test_node_insertion_applies(self):
        g = Graph()
        NodeInsertion.with_attrs("a", field="SA", experience=7).apply(g)
        assert g.get("a", "experience") == 7

    def test_node_insertion_duplicate_raises(self):
        g = Graph()
        g.add_node("a")
        with pytest.raises(UpdateError, match="already present"):
            NodeInsertion("a").apply(g)

    def test_node_insertion_inverted(self):
        assert NodeInsertion("a").inverted() == NodeDeletion("a")

    def test_node_deletion_applies_with_edges(self):
        g = Graph.from_edges([("a", "b"), ("c", "a")])
        NodeDeletion("a").apply(g)
        assert "a" not in g
        assert g.num_edges == 0

    def test_node_deletion_missing_raises(self):
        with pytest.raises(UpdateError, match="not present"):
            NodeDeletion("a").apply(Graph())

    def test_node_deletion_not_invertible(self):
        with pytest.raises(UpdateError):
            NodeDeletion("a").inverted()

    def test_attribute_update_applies(self):
        g = Graph()
        g.add_node("a", experience=3)
        AttributeUpdate("a", "experience", 9).apply(g)
        assert g.get("a", "experience") == 9

    def test_attribute_update_missing_node_raises(self):
        with pytest.raises(UpdateError):
            AttributeUpdate("a", "x", 1).apply(Graph())

    def test_decompose_node_deletion(self):
        g = Graph.from_edges([("a", "b"), ("c", "a"), ("a", "a")])
        primitives = decompose(g, NodeDeletion("a"))
        # Self-loop once, out-edge, in-edge, then the bare deletion.
        assert len(primitives) == 4
        assert primitives[-1] == NodeDeletion("a")
        for primitive in primitives:
            primitive.apply(g)
        assert "a" not in g

    def test_decompose_passthrough_for_other_updates(self):
        g = Graph.from_edges([("a", "b")])
        update = AttributeUpdate("a", "x", 1)
        assert decompose(g, update) == [update]

    def test_decompose_missing_node_raises(self):
        with pytest.raises(UpdateError):
            decompose(Graph(), NodeDeletion("a"))


def bounded_ab(bound=2):
    return (
        PatternBuilder()
        .node("A", 'label == "A"', output=True)
        .node("B", 'label == "B"')
        .edge("A", "B", bound)
        .build()
    )


class TestIncrementalSimulationNodeUpdates:
    def test_attribute_update_gains_match(self):
        g = make_labelled_graph([("a", "b")], {"a": "X", "b": "B"})
        inc = IncrementalSimulation(g, bounded_ab(1))
        assert inc.relation().is_empty
        inc.apply(AttributeUpdate("a", "label", "A"))
        assert inc.relation().num_pairs == 2
        inc.check_invariants()

    def test_attribute_update_loses_match(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, bounded_ab(1))
        inc.apply(AttributeUpdate("b", "label", "X"))
        assert inc.relation().is_empty
        inc.check_invariants()

    def test_node_insertion_then_edges(self):
        g = make_labelled_graph([], {"b": "B"})
        inc = IncrementalSimulation(g, bounded_ab(1))
        inc.apply(NodeInsertion.with_attrs("a", label="A"))
        assert inc.relation().is_empty  # no edge yet
        inc.apply(EdgeInsertion("a", "b"))
        assert inc.relation().num_pairs == 2
        inc.check_invariants()

    def test_node_deletion_cascades(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, bounded_ab(1))
        inc.apply(NodeDeletion("b"))
        assert inc.relation().is_empty
        assert "b" not in g
        inc.check_invariants()


class TestIncrementalBoundedNodeUpdates:
    def test_attribute_update_gains_match(self):
        g = make_labelled_graph(
            [("a", "m"), ("m", "b")], {"a": "X", "m": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        inc.apply(AttributeUpdate("a", "label", "A"))
        assert inc.relation().num_pairs == 2
        inc.state.check_invariants()

    def test_attribute_update_on_mid_chain_target(self):
        # b leaves candidacy: distances untouched but matches collapse.
        g = make_labelled_graph(
            [("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        assert inc.relation().num_pairs == 2
        inc.apply(AttributeUpdate("b", "label", "X"))
        assert inc.relation().is_empty
        inc.state.check_invariants()

    def test_node_insertion_and_wiring(self):
        g = make_labelled_graph([("a", "m")], {"a": "A", "m": "M"})
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        inc.apply(NodeInsertion.with_attrs("b", label="B"))
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("m", "b"))
        assert inc.relation().num_pairs == 2
        inc.state.check_invariants()

    def test_node_deletion_with_edges(self):
        g = make_labelled_graph(
            [("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"}
        )
        inc = IncrementalBoundedSimulation(g, bounded_ab(2))
        inc.apply(NodeDeletion("m"))
        assert inc.relation().is_empty
        assert "m" not in g
        inc.state.check_invariants()

    def test_self_loop_pattern_candidacy_entry(self):
        pattern = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .edge("A", "A", 2)
            .build()
        )
        g = make_labelled_graph([("x", "y"), ("y", "x")], {"x": "A", "y": "Z"})
        inc = IncrementalBoundedSimulation(g, pattern)
        # x already matches: the 2-cycle is a nonempty path back to itself.
        assert set(inc.relation().matches_of("A")) == {"x"}
        inc.apply(AttributeUpdate("y", "label", "A"))
        assert set(inc.relation().matches_of("A")) == {"x", "y"}
        inc.state.check_invariants()
        # And leaving candidacy unwinds it symmetrically.
        inc.apply(AttributeUpdate("y", "label", "Z"))
        assert set(inc.relation().matches_of("A")) == {"x"}
        inc.state.check_invariants()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_mixed_node_and_edge_updates_match_oracle(self, seed):
        import random

        rng = random.Random(seed)
        g = random_digraph(12, 26, num_labels=3, seed=seed)
        pattern = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .node("C", 'label == "L2"')
            .edge("A", "B", 2)
            .edge("B", "C", 2)
            .edge("C", "A", 3)
            .build()
        )
        inc_bounded = IncrementalBoundedSimulation(g.copy(), pattern)
        inc_sim_graph = g.copy()
        unit = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 1)
            .build()
        )
        inc_sim = IncrementalSimulation(inc_sim_graph, unit)
        next_id = 1000
        for _step in range(18):
            graph = inc_bounded.graph
            choice = rng.random()
            nodes = list(graph.nodes())
            if choice < 0.25 and nodes:
                update = AttributeUpdate(
                    rng.choice(nodes), "label", f"L{rng.randrange(3)}"
                )
            elif choice < 0.45:
                update = NodeInsertion.with_attrs(
                    next_id, label=f"L{rng.randrange(3)}", x=rng.randint(0, 9)
                )
                next_id += 1
            elif choice < 0.6 and len(nodes) > 3:
                update = NodeDeletion(rng.choice(nodes))
            else:
                candidates = [
                    (s, t)
                    for s in nodes
                    for t in nodes
                    if s != t and not graph.has_edge(s, t)
                ]
                if not candidates:
                    continue
                update = EdgeInsertion(*rng.choice(candidates))
            inc_bounded.apply(update)
            inc_bounded.state.check_invariants()
            assert inc_bounded.relation() == naive_bounded(
                inc_bounded.graph, pattern
            ), update
            # replay on the simulation maintainer (independent graph copy)
            replay = (
                decompose(inc_sim_graph, update)
                if isinstance(update, NodeDeletion)
                else [update]
            )
            for primitive in replay:
                primitive.apply(inc_sim_graph)
                inc_sim.apply(primitive, apply_to_graph=False)
            inc_sim.check_invariants()
            assert inc_sim.relation() == naive_simulation(inc_sim_graph, unit), update


class TestMaintainedCompressionNodeUpdates:
    def test_attribute_update_rehomes_node(self):
        g = make_labelled_graph([], {"x": "A", "y": "A"})
        maintained = MaintainedCompression(g, attrs=("label",))
        assert maintained.num_classes == 1
        maintained.apply(AttributeUpdate("x", "label", "B"))
        maintained.check_partition()
        assert maintained.num_classes == 2

    def test_attribute_update_same_label_is_noop_split(self):
        g = make_labelled_graph([], {"x": "A", "y": "A"})
        maintained = MaintainedCompression(g, attrs=("label",))
        maintained.apply(AttributeUpdate("x", "other", 42))
        maintained.check_partition()
        assert maintained.num_classes == 1

    def test_node_insertion_and_deletion(self):
        g = make_labelled_graph([("x", "c")], {"x": "A", "c": "C"})
        maintained = MaintainedCompression(g, attrs=("label",))
        maintained.apply(NodeInsertion.with_attrs("z", label="A"))
        maintained.check_partition()
        maintained.apply(NodeDeletion("x"))
        maintained.check_partition()
        assert "x" not in g

    @pytest.mark.parametrize("seed", range(5))
    def test_maintained_compression_with_node_updates_preserves_queries(self, seed):
        import random

        rng = random.Random(seed)
        g = random_digraph(14, 30, num_labels=2, seed=seed)
        maintained = MaintainedCompression(g, attrs=("label",))
        pattern = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 2)
            .build()
        )
        next_id = 500
        for _step in range(12):
            nodes = list(g.nodes())
            roll = rng.random()
            if roll < 0.3 and nodes:
                update = AttributeUpdate(
                    rng.choice(nodes), "label", f"L{rng.randrange(2)}"
                )
            elif roll < 0.55:
                update = NodeInsertion.with_attrs(next_id, label=f"L{rng.randrange(2)}")
                next_id += 1
            elif roll < 0.7 and len(nodes) > 4:
                update = NodeDeletion(rng.choice(nodes))
            else:
                pairs = [
                    (s, t)
                    for s in nodes
                    for t in nodes
                    if s != t and not g.has_edge(s, t)
                ]
                if not pairs:
                    continue
                update = EdgeInsertion(*rng.choice(pairs))
            maintained.apply(update)
            maintained.check_partition()
            compressed = maintained.compressed()
            direct = match_bounded(g, pattern).relation
            on_quotient = match_bounded(compressed.quotient, pattern).relation
            assert decompress_relation(on_quotient, compressed) == direct, update


class TestEngineNodeUpdates:
    def test_engine_routes_node_updates_through_all_maintainers(self):
        engine = QueryEngine()
        graph = paper_graph()
        engine.register_graph("fig1", graph)
        pattern = paper_pattern()
        engine.pin("fig1", pattern)
        engine.compress_graph("fig1", attrs=("field",))

        # Grow the team: a new senior architect who led Dan.
        engine.update_graph(
            "fig1",
            [
                NodeInsertion.with_attrs(
                    "Amy", field="SA", specialty="system architect", experience=8
                ),
                EdgeInsertion("Amy", "Dan"),
                EdgeInsertion("Amy", "Bill"),
                EdgeInsertion("Amy", "Fred"),
            ],
        )
        # Seniority change: Walt drops below the threshold.
        summary = engine.update_graph(
            "fig1", [AttributeUpdate("Walt", "experience", 4)]
        )
        delta = summary["pinned_deltas"][pattern.canonical_key()]
        assert ("SA", "Walt") in delta["removed"]
        cached = engine.evaluate("fig1", pattern)
        assert cached.relation == match_bounded(graph, pattern).relation

        # Delete a person entirely; everything must stay consistent.
        engine.update_graph("fig1", [NodeDeletion("Bill")])
        cached = engine.evaluate("fig1", pattern)
        assert cached.stats["route"] == "cache"
        assert cached.relation == match_bounded(graph, pattern).relation
