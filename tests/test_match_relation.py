"""Unit tests for MatchRelation / MatchResult value semantics."""

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.errors import EvaluationError
from repro.matching.base import MatchRelation, MatchResult
from repro.matching.bounded import match_bounded
from repro.pattern.pattern import Pattern


def two_node_pattern() -> Pattern:
    q = Pattern()
    q.add_node("A")
    q.add_node("B")
    return q


class TestFromSets:
    def test_total_sets_kept(self):
        relation = MatchRelation.from_sets(
            two_node_pattern(), {"A": {"x"}, "B": {"y", "z"}}
        )
        assert relation.matches_of("B") == {"y", "z"}
        assert relation.num_pairs == 3
        assert not relation.is_empty

    def test_partial_sets_collapse_to_empty(self):
        """The all-or-nothing rule of M(Q,G)."""
        relation = MatchRelation.from_sets(two_node_pattern(), {"A": {"x"}, "B": set()})
        assert relation.is_empty
        assert relation.matches_of("A") == frozenset()

    def test_missing_pattern_node_raises(self):
        with pytest.raises(EvaluationError, match="missing pattern nodes"):
            MatchRelation.from_sets(two_node_pattern(), {"A": {"x"}})

    def test_extra_keys_ignored(self):
        relation = MatchRelation.from_sets(
            two_node_pattern(), {"A": {"x"}, "B": {"y"}, "Z": {"q"}}
        )
        assert "Z" not in relation


class TestViews:
    def test_pairs_and_matched_nodes(self):
        relation = MatchRelation({"A": {"x"}, "B": {"x", "y"}})
        assert set(relation.pairs()) == {("A", "x"), ("B", "x"), ("B", "y")}
        assert relation.matched_data_nodes() == {"x", "y"}

    def test_mapping_protocol(self):
        relation = MatchRelation({"A": {"x"}})
        assert relation["A"] == frozenset({"x"})
        assert list(relation) == ["A"]
        assert len(relation) == 1

    def test_matches_of_unknown_is_empty(self):
        assert MatchRelation({}).matches_of("A") == frozenset()

    def test_diff(self):
        before = MatchRelation({"A": {"x"}, "B": {"y"}})
        after = MatchRelation({"A": {"x", "z"}, "B": set()})
        added, removed = before.diff(after)
        assert added == {("A", "z")}
        assert removed == {("B", "y")}

    def test_equality_and_hash(self):
        first = MatchRelation({"A": {"x", "y"}})
        second = MatchRelation({"A": {"y", "x"}})
        assert first == second
        assert hash(first) == hash(second)

    def test_repr_shows_sizes(self):
        assert "A:2" in repr(MatchRelation({"A": {"x", "y"}}))


class TestSerialization:
    def test_round_trip(self):
        relation = MatchRelation({"A": {"x"}, "B": {"y", "z"}})
        assert MatchRelation.from_dict(relation.to_dict()) == relation

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(EvaluationError):
            MatchRelation.from_dict({"format": "nope"})


class TestMatchResult:
    def test_output_matches(self):
        result = match_bounded(paper_graph(), paper_pattern())
        assert result.output_matches() == {"Bob", "Walt"}

    def test_output_matches_requires_output_node(self):
        pattern = two_node_pattern()
        result = MatchResult(paper_graph(), pattern, MatchRelation({}))
        with pytest.raises(EvaluationError, match="no output node"):
            result.output_matches()

    def test_result_graph_cached(self):
        result = match_bounded(paper_graph(), paper_pattern())
        assert result.result_graph() is result.result_graph()

    def test_repr_mentions_status(self):
        result = match_bounded(paper_graph(), paper_pattern())
        assert "match" in repr(result)
