"""The frozen-snapshot layer: round trips, kernels, caching, differentials.

Three layers of guarantees:

* :class:`~repro.graph.frozen.FrozenGraph` is a faithful snapshot —
  structure, order, attributes and the ``to_graph()`` round trip (seeded
  and property-based);
* every frozen kernel — bounded BFS, multi-source ball covers, both
  matchers' refinement, ball decomposition, the ranking Dijkstras —
  produces results identical to the dict-backed path it replaces (seeded
  differential sweeps reusing the shapes of ``tests/test_differential.py``);
* the engine's ``SnapshotCache`` serves warm snapshots, detects stale ones
  via ``Graph.version``, and every stale-snapshot misuse fails loudly.
"""

from __future__ import annotations

import pickle
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.cache import SnapshotCache
from repro.engine.engine import QueryEngine
from repro.engine.parallel import ParallelExecutor
from repro.errors import CacheError, EvaluationError, GraphError
from repro.graph.digraph import Graph
from repro.graph.distance import (
    bounded_ancestors,
    bounded_descendants,
    distance,
    eccentricity_within,
    multi_source_descendants,
    weighted_distances,
    within_bound,
)
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_digraph
from repro.graph.partition import decompose as ball_decompose
from repro.matching.bounded import frozen_successor_rows, match_bounded
from repro.matching.simulation import match_simulation, simulation_candidates
from repro.pattern.builder import PatternBuilder
from repro.ranking.topk import RankingContext
from tests.test_differential import random_case


# ----------------------------------------------------------------------
# snapshot structure + round trip
# ----------------------------------------------------------------------

class TestFrozenGraph:
    def test_structure_mirrors_graph(self, fig1):
        frozen = FrozenGraph.freeze(fig1)
        assert frozen.num_nodes == fig1.num_nodes
        assert frozen.num_edges == fig1.num_edges
        assert frozen.size == fig1.size
        assert len(frozen) == len(fig1)
        assert list(frozen.nodes()) == list(fig1.nodes())
        assert list(frozen.edges()) == list(fig1.edges())
        for node in fig1.nodes():
            assert node in frozen
            assert list(frozen.successors(node)) == list(fig1.successors(node))
            assert list(frozen.predecessors(node)) == list(fig1.predecessors(node))
            assert frozen.out_degree(node) == fig1.out_degree(node)
            assert frozen.in_degree(node) == fig1.in_degree(node)
            assert frozen.node_attrs(node) == fig1.attrs(node)
        assert frozen.has_edge("Bob", "Dan") == fig1.has_edge("Bob", "Dan")
        assert frozen.source_version == fig1.version

    def test_unknown_node_raises(self, fig1):
        frozen = FrozenGraph.freeze(fig1)
        with pytest.raises(GraphError, match="unknown node"):
            frozen.id_of("nobody")
        with pytest.raises(GraphError, match="unknown node"):
            list(frozen.successors("nobody"))
        assert not frozen.has_node("nobody")

    @pytest.mark.parametrize("seed", range(6))
    def test_round_trip_random(self, seed):
        graph = random_digraph(30, 90, seed=seed)
        assert FrozenGraph.freeze(graph).to_graph() == graph

    def test_round_trip_preserves_value_types(self):
        graph = Graph(name="typed")
        graph.add_node("a", x=1)
        graph.add_node("b", x=True)
        graph.add_node("c", x=1.0)
        graph.add_node("d", x=[1, 2])  # unhashable: stored un-deduped
        rebuilt = FrozenGraph.freeze(graph).to_graph()
        assert rebuilt == graph
        assert type(rebuilt.get("a", "x")) is int
        assert type(rebuilt.get("b", "x")) is bool
        assert type(rebuilt.get("c", "x")) is float
        assert rebuilt.get("d", "x") == [1, 2]

    def test_attribute_values_are_interned(self):
        graph = Graph()
        for index in range(100):
            graph.add_node(index, field="SA", level="senior")
        frozen = FrozenGraph.freeze(graph)
        assert len(frozen._values) == 2  # one "SA", one "senior"

    def test_pickle_round_trip_drops_derived_views(self, fig1):
        frozen = FrozenGraph.freeze(fig1)
        frozen.successor_sets()  # force the derived views
        frozen.predecessor_sets()
        clone = pickle.loads(pickle.dumps(frozen))
        assert clone._succ_sets is None and clone._ids is None
        assert clone.to_graph() == fig1
        assert clone.successor_sets() == frozen.successor_sets()

    def test_matches_tracks_graph_version(self, fig1):
        frozen = FrozenGraph.freeze(fig1)
        assert frozen.matches(fig1)
        fig1.set("Bob", "experience", 9)
        assert not frozen.matches(fig1)

    def test_matches_rejects_a_different_graph(self):
        """Coinciding version/size must not pass a foreign snapshot."""
        first = Graph.from_edges([("a", "b")])
        second = Graph.from_edges([("x", "y")])
        assert first.version == second.version  # same build history shape
        assert not FrozenGraph.freeze(first).matches(second)
        assert FrozenGraph.freeze(second).matches(second)
        assert FrozenGraph.freeze(Graph()).matches(Graph())  # empty graphs

    def test_induced_equals_dict_subgraph(self, fig1):
        keep = ["Bob", "Dan", "Mat", "Eva"]
        frozen = FrozenGraph.freeze(fig1)
        induced = frozen.induced(keep, name="ball")
        assert induced.to_graph() == fig1.subgraph(keep, name="ball")
        bare = frozen.induced(keep, include_attrs=False)
        assert bare.num_edges == induced.num_edges
        assert bare.node_attrs("Bob") == {}

    def test_induced_unknown_node_raises(self, fig1):
        with pytest.raises(GraphError, match="unknown node"):
            FrozenGraph.freeze(fig1).induced(["Ann", "nobody"])

    def test_induced_repools_values(self, fig1):
        """A sub-snapshot's value pool holds only values its nodes use."""
        frozen = FrozenGraph.freeze(fig1)
        induced = frozen.induced(["Bob"])
        assert induced.node_attrs("Bob") == fig1.attrs("Bob")
        assert len(induced._values) <= len(fig1.attrs("Bob"))
        assert len(induced._values) < len(frozen._values)

    def test_without_attrs_shares_buffers(self, fig1):
        frozen = FrozenGraph.freeze(fig1)
        bare = frozen.without_attrs()
        assert bare.out_targets is frozen.out_targets  # O(1), no copies
        assert bare.labels is frozen.labels
        assert bare.node_attrs("Bob") == {}
        assert bare.matches(fig1)
        assert bare.without_attrs() is bare  # already bare: same object
        assert len(pickle.dumps(bare)) < len(pickle.dumps(frozen))


@st.composite
def attributed_graphs(draw):
    """Random digraphs with mixed-type attributes, for round-trip hunting."""
    num_nodes = draw(st.integers(min_value=0, max_value=12))
    graph = Graph(name="prop")
    values = st.one_of(
        st.integers(-3, 3), st.booleans(), st.text(max_size=3), st.none()
    )
    for index in range(num_nodes):
        attrs = draw(
            st.dictionaries(st.sampled_from(["a", "b", "c"]), values, max_size=3)
        )
        graph.add_node(index, **attrs)
    if num_nodes:
        pairs = st.tuples(
            st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
        )
        for source, target in draw(st.lists(pairs, max_size=3 * num_nodes)):
            if not graph.has_edge(source, target):
                graph.add_edge(source, target)
    return graph


@settings(max_examples=120, deadline=None)
@given(attributed_graphs())
def test_freeze_to_graph_round_trip_property(graph):
    """``FrozenGraph.freeze(g).to_graph() == g`` for arbitrary graphs."""
    frozen = FrozenGraph.freeze(graph)
    rebuilt = frozen.to_graph()
    assert rebuilt == graph
    assert list(rebuilt.nodes()) == list(graph.nodes())
    assert list(rebuilt.edges()) == list(graph.edges())


# ----------------------------------------------------------------------
# distance kernels
# ----------------------------------------------------------------------

class TestFrozenDistance:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("bound", [0, 1, 2, 3, None])
    def test_bounded_search_matches_dict_path(self, seed, bound):
        graph = random_digraph(25, 80, seed=seed)
        frozen = FrozenGraph.freeze(graph)
        for node in graph.nodes():
            assert bounded_descendants(frozen, node, bound) == bounded_descendants(
                graph, node, bound
            ), f"descendants diverged at seed {seed} node {node} bound {bound}"
            assert bounded_ancestors(frozen, node, bound) == bounded_ancestors(
                graph, node, bound
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_source_and_scalar_helpers(self, seed):
        graph = random_digraph(25, 70, seed=seed)
        frozen = FrozenGraph.freeze(graph)
        rng = random.Random(seed)
        sources = rng.sample(list(graph.nodes()), 6)
        for bound in (1, 2, None):
            assert multi_source_descendants(
                frozen, sources, bound
            ) == multi_source_descendants(graph, sources, bound)
        for node in sources:
            assert distance(frozen, sources[0], node) == distance(
                graph, sources[0], node
            )
            assert within_bound(frozen, sources[0], node, 2) == within_bound(
                graph, sources[0], node, 2
            )
            assert eccentricity_within(frozen, node, 3) == eccentricity_within(
                graph, node, 3
            )

    def test_distance_missing_nodes(self, fig1):
        frozen = FrozenGraph.freeze(fig1)
        assert distance(frozen, "Ann", "nobody") is None
        assert distance(frozen, "nobody", "Ann") is None


# ----------------------------------------------------------------------
# matcher kernels (differential, both strategies)
# ----------------------------------------------------------------------

def deep_pattern(bound):
    """A chain pattern whose source depth picks the bitset strategy."""
    return (
        PatternBuilder("deep")
        .node("A", 'label == "L0"', output=True)
        .node("B", 'label == "L1"')
        .edge("A", "B", bound)
        .build()
    )


class TestFrozenMatchers:
    @pytest.mark.parametrize("seed", range(40))
    def test_bounded_matches_dict_path(self, seed):
        graph, pattern = random_case(seed)
        frozen = FrozenGraph.freeze(graph)
        plain = match_bounded(graph, pattern)
        accelerated = match_bounded(graph, pattern, frozen=frozen)
        assert accelerated.relation == plain.relation, f"seed {seed}"
        assert accelerated.relation.to_dict() == plain.relation.to_dict()
        # Identical refinement state, not merely the same relation.
        assert accelerated._state.S == plain._state.S, f"seed {seed}"
        assert accelerated._state.cnt == plain._state.cnt
        accelerated._state.check_invariants()
        result_edges = set(plain.result_graph().edges())
        assert set(accelerated.result_graph().edges()) == result_edges

    @pytest.mark.parametrize("seed", range(40))
    def test_simulation_matches_dict_path(self, seed):
        graph, pattern = random_case(seed, simulation_only=True)
        frozen = FrozenGraph.freeze(graph)
        plain = match_simulation(graph, pattern)
        accelerated = match_simulation(graph, pattern, frozen=frozen)
        assert accelerated.relation == plain.relation, f"seed {seed}"
        assert accelerated.relation.to_dict() == plain.relation.to_dict()

    @pytest.mark.parametrize("bound", [5, 9, None])
    def test_bitset_strategy_cases(self, bound):
        """Deep and ``*`` bounds route through the bitset-parallel kernel."""
        for seed in range(6):
            graph = random_digraph(30, 100, seed=seed)
            pattern = deep_pattern(bound)
            frozen = FrozenGraph.freeze(graph)
            plain = match_bounded(graph, pattern)
            accelerated = match_bounded(graph, pattern, frozen=frozen)
            assert accelerated.relation == plain.relation, (seed, bound)
            assert accelerated._state.S == plain._state.S, (seed, bound)

    def test_bitset_chunk_boundaries(self, monkeypatch):
        """Multi-chunk traversals (sources > chunk size) stay identical.

        Production graphs cross the 4096-source chunk limit; shrinking it
        to 8 exercises the per-chunk reach reset and the
        ``chunk[base + offset]`` mask decode at chunk boundaries.
        """
        from repro.matching import bounded as bounded_module

        monkeypatch.setattr(bounded_module, "FROZEN_CHUNK_BITS", 8)
        for seed in range(4):
            graph = random_digraph(40, 140, seed=seed)
            for bound in (6, None):
                pattern = deep_pattern(bound)
                frozen = FrozenGraph.freeze(graph)
                plain = match_bounded(graph, pattern)
                accelerated = match_bounded(graph, pattern, frozen=frozen)
                assert accelerated.relation == plain.relation, (seed, bound)
                assert accelerated._state.S == plain._state.S, (seed, bound)

    def test_kernel_strategies_agree(self, monkeypatch):
        """Both kernel strategies produce the same rows on the same input."""
        from repro.matching import bounded as bounded_module

        graph = random_digraph(40, 140, seed=3)
        pattern = deep_pattern(6)
        frozen = FrozenGraph.freeze(graph)
        ids = frozen.ids()
        candidates = simulation_candidates(graph, pattern)
        candidate_ids = {
            u: frozenset(ids[v] for v in vs) for u, vs in candidates.items()
        }
        spec = {u: tuple(pattern.out_edges(u)) for u in pattern.nodes()}
        bulk = frozen_successor_rows(frozen, spec, candidate_ids)
        monkeypatch.setattr(bounded_module, "FROZEN_BULK_DEPTH", 99)
        per_source = frozen_successor_rows(frozen, spec, candidate_ids)
        assert bulk == per_source

    def test_stale_snapshot_rejected(self, fig1, fig1_query):
        from repro.matching.simulation import refine_simulation

        frozen = FrozenGraph.freeze(fig1)
        fig1.set("Bob", "experience", 9)
        with pytest.raises(EvaluationError, match="stale frozen snapshot"):
            match_bounded(fig1, fig1_query, frozen=frozen)
        simple = deep_pattern(1)
        with pytest.raises(EvaluationError, match="stale frozen snapshot"):
            match_simulation(fig1, simple, frozen=frozen)
        with pytest.raises(EvaluationError, match="stale frozen snapshot"):
            refine_simulation(
                fig1, simple, simulation_candidates(fig1, simple), frozen=frozen
            )
        with pytest.raises(GraphError, match="stale frozen snapshot"):
            ball_decompose(
                fig1, fig1_query, simulation_candidates(fig1, fig1_query), 2,
                frozen=frozen,
            )
        with ParallelExecutor(workers=1) as executor:
            with pytest.raises(EvaluationError, match="stale frozen snapshot"):
                executor.match(fig1, fig1_query, frozen=frozen)


class TestFrozenPartition:
    @pytest.mark.parametrize("seed", range(12))
    def test_decompose_matches_dict_path(self, seed):
        graph, pattern = random_case(seed)
        frozen = FrozenGraph.freeze(graph)
        candidates = simulation_candidates(graph, pattern)
        plain = ball_decompose(graph, pattern, dict(candidates), 3)
        accelerated = ball_decompose(graph, pattern, dict(candidates), 3, frozen=frozen)
        assert len(accelerated) == len(plain), f"seed {seed}"
        for mine, theirs in zip(accelerated, plain):
            assert mine.pivots == theirs.pivots
            assert mine.depths == theirs.depths
            assert mine.nodes == theirs.nodes


# ----------------------------------------------------------------------
# ranking Dijkstras
# ----------------------------------------------------------------------

class TestFrozenRanking:
    @pytest.mark.parametrize("seed", range(10))
    def test_context_distances_byte_identical(self, seed):
        graph, pattern = random_case(seed)
        result = match_bounded(graph, pattern)
        if result.relation.is_empty:
            pytest.skip("no match for this seed; nothing to rank")
        adaptive = RankingContext(result.result_graph())
        forced = RankingContext(result.result_graph())
        # Force the frozen CSR so the int kernel is exercised even where
        # the adaptive rule would keep small graphs on the label path.
        forced._weighted_csr(forward=True)
        forced._weighted_csr(forward=False)
        for node in adaptive.matched_by:
            label_out = weighted_distances(adaptive.out_adj, node)
            label_in = weighted_distances(adaptive.in_adj, node)
            # Byte-identical: same values in the same insertion order,
            # whichever path the context picks.
            assert list(adaptive.distances_from(node).items()) == list(
                label_out.items()
            ), f"seed {seed} node {node!r}"
            assert list(adaptive.distances_to(node).items()) == list(
                label_in.items()
            )
            assert list(forced.distances_from(node).items()) == list(
                label_out.items()
            ), f"seed {seed} node {node!r} (forced CSR)"
            assert list(forced.distances_to(node).items()) == list(
                label_in.items()
            )

    def test_top_k_matches_naive_all_metrics(self, fig1, fig1_query):
        from repro.ranking.metrics import METRICS

        engine = QueryEngine()
        engine.register_graph("g", fig1)
        result_graph = match_bounded(fig1, fig1_query).result_graph()
        detail = engine.top_k("g", fig1_query, 3)
        from repro.ranking.social_impact import rank_matches

        assert detail == rank_matches(result_graph)[:3]
        for name, metric in METRICS.items():
            if name == "social-impact":
                continue
            assert engine.top_k("g", fig1_query, 3, metric=name) == (
                metric.rank_all(result_graph)[:3]
            )


# ----------------------------------------------------------------------
# the engine's snapshot cache
# ----------------------------------------------------------------------

class TestSnapshotCache:
    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            SnapshotCache(capacity=0)

    def test_hit_miss_stale(self, fig1):
        cache = SnapshotCache(capacity=2)
        assert cache.get("g", 0) is None
        frozen = FrozenGraph.freeze(fig1)
        cache.put("g", frozen, 7)
        assert cache.get("g", 7) is frozen
        assert cache.get("g", 8) is None  # version moved: dropped
        assert "g" not in cache
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["stale_drops"] == 1
        assert stats["misses"] == 2 and stats["builds"] == 1

    def test_lru_eviction_and_invalidation(self, fig1):
        cache = SnapshotCache(capacity=2)
        frozen = FrozenGraph.freeze(fig1)
        cache.put("a", frozen, 1)
        cache.put("b", frozen, 1)
        cache.put("c", frozen, 1)
        assert "a" not in cache and len(cache) == 2
        assert cache.invalidate_graph("b") == 1
        assert cache.invalidate_graph("b") == 0

    def test_engine_reuses_snapshot_across_queries(self, fig1, fig1_query):
        engine = QueryEngine()
        engine.register_graph("g", fig1)
        engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        stats = engine.snapshot_stats()
        assert stats["builds"] == 1
        assert stats["hits"] >= 1
        assert engine.cache_stats()["snapshots"]["builds"] == 1

    def test_engine_invalidates_on_version_change(self, fig1, fig1_query):
        """Acceptance: SnapshotCache invalidates on ``Graph.version`` change."""
        engine = QueryEngine()
        engine.register_graph("g", fig1)
        before = engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        # Out-of-band mutation through a counting API: the cached snapshot
        # is stale, and the next evaluation must re-freeze, not serve it.
        # (Dan loses his only 1-hop tester, so the relation must shrink.)
        fig1.remove_edge("Dan", "Eva")
        after = engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        stats = engine.snapshot_stats()
        assert stats["builds"] == 2
        assert stats["stale_drops"] == 1
        # ...and the fresh snapshot reflects the mutated graph.
        assert after.relation == match_bounded(fig1, fig1_query).relation
        assert after.relation != before.relation

    def test_engine_update_graph_drops_snapshot(self, fig1, fig1_query):
        from repro.incremental.updates import EdgeDeletion

        engine = QueryEngine()
        engine.register_graph("g", fig1)
        engine.evaluate("g", fig1_query)
        engine.update_graph("g", [EdgeDeletion("Bob", "Dan")])
        assert engine.snapshot_stats()["invalidations"] == 1
        fresh = engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        assert fresh.relation == match_bounded(fig1, fig1_query).relation

    def test_reach_index_skips_the_freeze(self, fig1, fig1_query):
        """The bounded matcher prefers a reach index; no snapshot is built."""
        engine = QueryEngine()
        engine.register_graph("g", fig1)
        engine.enable_reach_index("g")
        result = engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        assert engine.snapshot_stats()["builds"] == 0
        assert result.relation == match_bounded(fig1, fig1_query).relation
        # ...and explain agrees with what evaluate actually did.
        plan = engine.explain("g", fig1_query)
        assert any("frozen snapshot: bypassed" in r for r in plan.reasons)
        # Sharded evaluation has no reach index in its workers, so it
        # snapshots even here — exactly what the note promises.
        parallel = engine.evaluate(
            "g", fig1_query, use_cache=False, cache_result=False, workers=2
        )
        assert parallel.relation == result.relation
        assert engine.snapshot_stats()["builds"] == 1

    def test_explain_reports_snapshot_state(self, fig1, fig1_query):
        engine = QueryEngine()
        engine.register_graph("g", fig1)
        cold = engine.explain("g", fig1_query)
        assert any("frozen snapshot: cold" in reason for reason in cold.reasons)
        engine.evaluate("g", fig1_query)
        warm = engine.explain("g", fig1_query)
        # A cached result plans the cache route (no snapshot note)...
        assert warm.route == "cache"
        engine.register_graph("g2", fig1)
        engine.evaluate("g2", fig1_query, use_cache=False, cache_result=False)
        warm = engine.explain("g2", fig1_query)
        assert any("frozen snapshot: warm" in reason for reason in warm.reasons)


# ----------------------------------------------------------------------
# frozen shard shipping (workers > 0)
# ----------------------------------------------------------------------

class TestFrozenShipping:
    @pytest.mark.parametrize("seed", range(8))
    def test_executor_matches_sequential(self, seed):
        graph, pattern = random_case(seed)
        sequential = match_bounded(graph, pattern)
        with ParallelExecutor(workers=2) as executor:
            parallel = executor.match(graph, pattern)
        assert parallel.relation == sequential.relation, f"seed {seed}"
        assert parallel.relation.to_dict() == sequential.relation.to_dict()

    def test_shard_payloads_are_frozen_buffers(self, fig1, fig1_query):
        """Materialized shards ship frozen sub-snapshots, never dict graphs."""
        frozen = FrozenGraph.freeze(fig1)
        candidates = simulation_candidates(fig1, fig1_query)
        shards = ball_decompose(fig1, fig1_query, candidates, 2, frozen=frozen)
        shared_arrays = ParallelExecutor._candidate_arrays(
            frozen.ids(), candidates, fig1_query, shards
        )
        for shard in shards:
            payload = ParallelExecutor._shard_payload(
                frozen, fig1_query, shard, candidates, True, None
            )
            ball, edges_spec, pivot_ids, candidate_arrays, oracle_slice = payload
            assert oracle_slice is None  # no oracle was passed
            assert isinstance(ball, FrozenGraph)
            assert set(ball.nodes()) == set(shard.nodes)
            assert ball.node_attrs(next(iter(shard.nodes))) == {}  # attrs stay home
            assert set(edges_spec) == set(shard.pivots)
            for u, pivots in shard.pivots.items():
                assert tuple(ball.labels[i] for i in pivot_ids[u]) == pivots
            shared = ParallelExecutor._shard_payload(
                frozen, fig1_query, shard, candidates, False, shared_arrays
            )
            assert shared[0] is None  # the full snapshot is process-shared
            for u, arr in shared[3].items():
                assert arr is shared_arrays[u]  # built once, shared by shards

    def test_engine_workers_with_warm_snapshot(self, fig1, fig1_query):
        engine = QueryEngine()
        engine.register_graph("g", fig1)
        sequential = engine.evaluate("g", fig1_query, use_cache=False,
                                     cache_result=False)
        parallel = engine.evaluate(
            "g", fig1_query, use_cache=False, cache_result=False, workers=2
        )
        assert parallel.relation == sequential.relation
        assert engine.snapshot_stats()["builds"] == 1  # one snapshot fed both


# ----------------------------------------------------------------------
# the Graph.update_attrs satellite
# ----------------------------------------------------------------------

class TestUpdateAttrs:
    def test_bulk_write_bumps_version_once(self):
        graph = Graph()
        graph.add_node("a")
        before = graph.version
        graph.update_attrs("a", field="SA", experience=7)
        assert graph.version == before + 1
        assert graph.attrs("a") == {"field": "SA", "experience": 7}

    def test_empty_write_is_a_noop(self):
        graph = Graph()
        graph.add_node("a")
        before = graph.version
        graph.update_attrs("a")
        assert graph.version == before

    def test_unknown_node_raises(self):
        with pytest.raises(GraphError, match="unknown node"):
            Graph().update_attrs("ghost", x=1)

    def test_attributes_named_node_or_self_pass_through(self):
        """The node parameter is positional-only — no kwarg collisions."""
        from repro.incremental.updates import AttributeUpdate

        graph = Graph()
        graph.add_node("a")
        graph.update_attrs("a", node="yes", self="also")
        assert graph.attrs("a") == {"node": "yes", "self": "also"}
        AttributeUpdate("a", "node", 42).apply(graph)
        assert graph.get("a", "node") == 42

    def test_attribute_update_routes_through_counting_api(self, fig1):
        from repro.incremental.updates import AttributeUpdate

        before = fig1.version
        AttributeUpdate("Bob", "experience", 9).apply(fig1)
        assert fig1.version == before + 1
        assert fig1.get("Bob", "experience") == 9

    def test_snapshot_cache_sees_update_attrs(self, fig1, fig1_query):
        """The closed bypass: bulk attribute writes invalidate snapshots."""
        engine = QueryEngine()
        engine.register_graph("g", fig1)
        engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        fig1.update_attrs("Bob", field="BA")  # Bob stops matching SA
        after = engine.evaluate("g", fig1_query, use_cache=False, cache_result=False)
        assert engine.snapshot_stats()["stale_drops"] == 1
        assert "Bob" not in after.relation.matches_of("SA")
