"""Property-based tests: incremental maintenance == batch recomputation.

The central contract of the incremental module (SIGMOD'11): after ANY
sequence of edge updates, the maintained relation equals what a from-scratch
evaluation on the updated graph produces — and the internal counter/index
state remains exactly what a fresh build would create.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.digraph import Graph
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    decompose,
)
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern

LABELS = ("A", "B", "C")


@st.composite
def scenario(draw, max_nodes=8, max_edges=14, max_updates=10):
    """A graph, a pattern, and a valid update sequence for that graph."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=num_nodes, max_size=num_nodes)
    )
    graph = Graph()
    for index, label in enumerate(labels):
        graph.add_node(index, label=label)
    possible = [(s, t) for s in range(num_nodes) for t in range(num_nodes) if s != t]
    initial = draw(
        st.lists(st.sampled_from(possible), max_size=max_edges, unique=True)
    )
    graph.add_edges(initial)

    pattern = Pattern()
    num_pattern = draw(st.integers(min_value=1, max_value=3))
    names = [f"P{i}" for i in range(num_pattern)]
    for name in names:
        pattern.add_node(name, f'label == "{draw(st.sampled_from(LABELS))}"')
    for source, target in draw(
        st.lists(st.sampled_from([(a, b) for a in names for b in names]),
                 max_size=3, unique=True)
    ):
        pattern.add_edge(source, target, draw(st.sampled_from([1, 2, 3, None])))

    # Build a valid update sequence against an evolving copy.
    scratch = graph.copy()
    updates = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_updates))):
        existing = list(scratch.edges())
        missing = [pair for pair in possible if not scratch.has_edge(*pair)]
        choices = []
        if existing:
            choices.append("delete")
        if missing:
            choices.append("insert")
        if not choices:
            break
        kind = draw(st.sampled_from(choices))
        if kind == "insert":
            source, target = draw(st.sampled_from(missing))
            update = EdgeInsertion(source, target)
        else:
            source, target = draw(st.sampled_from(existing))
            update = EdgeDeletion(source, target)
        update.apply(scratch)
        updates.append(update)
    return graph, pattern, updates


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_incremental_bounded_equals_batch(data):
    graph, pattern, updates = data
    maintained = IncrementalBoundedSimulation(graph, pattern)
    for update in updates:
        maintained.apply(update)
    assert maintained.relation() == match_bounded(graph, pattern).relation
    maintained.state.check_invariants()


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_incremental_simulation_equals_batch(data):
    graph, pattern, updates = data
    unit = Pattern()
    for node in pattern.nodes():
        unit.add_node(node, pattern.predicate(node))
    for source, target, _bound in pattern.edges():
        unit.add_edge(source, target, 1)
    maintained = IncrementalSimulation(graph, unit)
    for update in updates:
        maintained.apply(update)
    assert maintained.relation() == match_simulation(graph, unit).relation
    maintained.check_invariants()


@given(scenario(max_updates=6))
@settings(max_examples=60, deadline=None)
def test_update_then_inverse_restores_relation(data):
    graph, pattern, updates = data
    maintained = IncrementalBoundedSimulation(graph, pattern)
    initial = maintained.relation()
    for update in updates:
        maintained.apply(update)
    for update in reversed(updates):
        maintained.apply(update.inverted())
    assert maintained.relation() == initial
    maintained.state.check_invariants()


@st.composite
def node_update_scenario(draw, max_nodes=7, max_updates=8):
    """Like :func:`scenario`, but the update stream mixes edge updates with
    attribute changes, node insertions and node deletions."""
    graph, pattern, _ = draw(scenario(max_nodes=max_nodes, max_updates=0))
    scratch = graph.copy()
    updates = []
    next_id = 10_000
    for _ in range(draw(st.integers(min_value=0, max_value=max_updates))):
        nodes = list(scratch.nodes())
        kinds = ["insert_node"]
        if nodes:
            kinds.append("set_attr")
            if len(nodes) > 2:
                kinds.append("delete_node")
            missing = [
                (s, t)
                for s in nodes
                for t in nodes
                if s != t and not scratch.has_edge(s, t)
            ]
            if missing:
                kinds.append("insert_edge")
            existing = list(scratch.edges())
            if existing:
                kinds.append("delete_edge")
        kind = draw(st.sampled_from(kinds))
        if kind == "insert_node":
            update = NodeInsertion.with_attrs(
                next_id, label=draw(st.sampled_from(LABELS))
            )
            next_id += 1
        elif kind == "set_attr":
            update = AttributeUpdate(
                draw(st.sampled_from(nodes)), "label", draw(st.sampled_from(LABELS))
            )
        elif kind == "delete_node":
            update = NodeDeletion(draw(st.sampled_from(nodes)))
        elif kind == "insert_edge":
            source, target = draw(st.sampled_from(missing))
            update = EdgeInsertion(source, target)
        else:
            source, target = draw(st.sampled_from(existing))
            update = EdgeDeletion(source, target)
        for primitive in decompose(scratch, update):
            primitive.apply(scratch)
        updates.append(update)
    return graph, pattern, updates


@given(node_update_scenario())
@settings(max_examples=80, deadline=None)
def test_incremental_bounded_handles_node_updates(data):
    graph, pattern, updates = data
    maintained = IncrementalBoundedSimulation(graph, pattern)
    for update in updates:
        maintained.apply(update)
        maintained.state.check_invariants()
    assert maintained.relation() == match_bounded(graph, pattern).relation


@given(node_update_scenario())
@settings(max_examples=80, deadline=None)
def test_incremental_simulation_handles_node_updates(data):
    graph, pattern, updates = data
    unit = Pattern()
    for node in pattern.nodes():
        unit.add_node(node, pattern.predicate(node))
    for source, target, _bound in pattern.edges():
        unit.add_edge(source, target, 1)
    maintained = IncrementalSimulation(graph, unit)
    for update in updates:
        maintained.apply(update)
        maintained.check_invariants()
    assert maintained.relation() == match_simulation(graph, unit).relation


@given(node_update_scenario())
@settings(max_examples=50, deadline=None)
def test_maintained_compression_handles_node_updates(data):
    from repro.compression.decompress import decompress_relation
    from repro.compression.maintain import MaintainedCompression

    graph, pattern, updates = data
    maintained = MaintainedCompression(graph, attrs=("label",))
    for update in updates:
        for primitive in decompose(graph, update):
            maintained.apply(primitive)
        maintained.check_partition()
    compressed = maintained.compressed()
    direct = match_bounded(graph, pattern).relation
    on_quotient = match_bounded(compressed.quotient, pattern).relation
    assert decompress_relation(on_quotient, compressed) == direct


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_incremental_state_equals_fresh_state(data):
    """Beyond relation equality: S/R/cnt must equal a fresh build's."""
    graph, pattern, updates = data
    maintained = IncrementalBoundedSimulation(graph, pattern)
    for update in updates:
        maintained.apply(update)
    from repro.matching.bounded import BoundedState

    fresh = BoundedState(graph, pattern)
    assert maintained.state.sim == fresh.sim
    for edge, rows in fresh.S.items():
        assert maintained.state.S[edge] == rows
    assert maintained.state.cnt == fresh.cnt
