"""Reproduction tests for every fact the paper states about Fig. 1.

These tests ARE the reproduction of the demo's Examples 1-3 (experiment ids
E1-E3 in DESIGN.md) plus the §II compression discussion.  Each assertion
cites the sentence of the paper it checks.
"""

from fractions import Fraction

import pytest

from repro.compression.compress import compress
from repro.compression.decompress import decompress_relation
from repro.compression.equivalence import mutually_similar
from repro.datasets.paper_example import (
    EDGE_E1,
    PAPER_RANKS,
    PAPER_RELATION,
    paper_graph,
    paper_pattern,
)
from repro.graph.distance import distance
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.updates import EdgeInsertion
from repro.matching.bounded import match_bounded
from repro.matching.isomorphism import count_isomorphisms
from repro.matching.simulation import match_simulation
from repro.ranking.social_impact import rank_matches, social_impact_rank


@pytest.fixture(scope="module")
def result():
    return match_bounded(paper_graph(), paper_pattern())


class TestExample1:
    """Example 1: M(Q,G) = {(SA,Bob), (SA,Walt), (BA,Jean), (SD,Mat),
    (SD,Dan), (SD,Pat), (ST,Eva)}."""

    def test_exact_match_relation(self, result):
        got = {u: set(vs) for u, vs in result.relation.items()}
        assert got == {u: set(vs) for u, vs in PAPER_RELATION.items()}

    def test_sd_maps_to_both_programmer_and_dba(self, result):
        """"the node SD in Q is mapped to both Mat (programmer) and Pat
        (DBA) in G, which is not allowed by a bijection"."""
        graph = paper_graph()
        matches = result.relation.matches_of("SD")
        specialties = {graph.get(v, "specialty") for v in matches}
        assert "programmer" in specialties
        assert "DBA" in specialties

    def test_sa_ba_edge_maps_to_length3_path(self):
        """"the edge is mapped to a path (e.g., the path from Bob to Jean)
        of a bounded length"."""
        graph = paper_graph()
        assert distance(graph, "Bob", "Jean") == 3  # within the bound of 3

    def test_subgraph_isomorphism_finds_nothing(self):
        """Isomorphism needs edge-to-edge mapping: no embedding exists."""
        assert count_isomorphisms(paper_graph(), paper_pattern()) == 0

    def test_plain_simulation_finds_nothing(self):
        """Simulation 'only allows edge to edge matching' — too strict here."""
        assert match_simulation(paper_graph(), paper_pattern()).relation.is_empty

    def test_fred_is_not_a_match_before_e1(self, result):
        assert "Fred" not in result.relation.matches_of("SD")

    def test_bill_matches_nothing(self, result):
        assert "Bill" not in result.relation.matched_data_nodes()


class TestExample2:
    """Example 2: f(SA,Bob) = 9/5, f(SA,Walt) = 7/3, Bob is top-1."""

    def test_result_graph_nodes(self, result):
        """"Its result graph Gr is a weighted graph with a set of nodes
        {Bob, Walt, Jean, Mat, Dan, Pat, Eva}"."""
        assert set(result.result_graph().nodes()) == {
            "Bob", "Walt", "Jean", "Mat", "Dan", "Pat", "Eva",
        }

    def test_rank_of_bob_is_nine_fifths(self, result):
        rank = social_impact_rank(result.result_graph(), "Bob")
        assert Fraction(rank).limit_denominator(100) == Fraction(9, 5)

    def test_rank_of_walt_is_seven_thirds(self, result):
        rank = social_impact_rank(result.result_graph(), "Walt")
        assert Fraction(rank).limit_denominator(100) == Fraction(7, 3)

    def test_paper_rank_constants(self, result):
        rg = result.result_graph()
        for node, expected in PAPER_RANKS.items():
            assert social_impact_rank(rg, node) == pytest.approx(expected)

    def test_bob_impact_set_sizes(self, result):
        """f(SA,Bob) divides by 5 and f(SA,Walt) by 3."""
        ranked = {r.node: r for r in rank_matches(result.result_graph())}
        assert ranked["Bob"].impact_set_size == 5
        assert ranked["Walt"].impact_set_size == 3

    def test_bob_is_top_one(self, result):
        ranked = rank_matches(result.result_graph())
        assert ranked[0].node == "Bob"
        assert ranked[1].node == "Walt"


class TestExample3:
    """Example 3: inserting e1 yields ΔM = {(SD, Fred)}."""

    def test_delta_is_exactly_sd_fred(self):
        before = match_bounded(paper_graph(), paper_pattern()).relation
        after = match_bounded(paper_graph(include_e1=True), paper_pattern()).relation
        added, removed = before.diff(after)
        assert added == {("SD", "Fred")}
        assert removed == set()

    def test_incremental_module_finds_the_same_delta(self):
        graph = paper_graph()
        incremental = IncrementalBoundedSimulation(graph, paper_pattern())
        before = incremental.relation()
        incremental.apply(EdgeInsertion(*EDGE_E1))
        added, removed = before.diff(incremental.relation())
        assert added == {("SD", "Fred")}
        assert removed == set()

    def test_incremental_state_is_consistent_after_e1(self):
        graph = paper_graph()
        incremental = IncrementalBoundedSimulation(graph, paper_pattern())
        incremental.apply(EdgeInsertion(*EDGE_E1))
        incremental.state.check_invariants()


class TestCompressionDiscussion:
    """§II: "Both Fred and Pat (DBA) collaborated with ST and BA people.
    Since they simulate the behavior of each other ... they could be
    considered equivalent"."""

    def test_pat_and_fred_mutually_similar_after_e1(self):
        graph = paper_graph(include_e1=True)
        label_of = lambda v: (graph.get(v, "field"), graph.get(v, "specialty"))
        assert mutually_similar(graph, label_of, "Pat", "Fred")

    def test_pat_and_fred_not_equivalent_before_e1(self):
        graph = paper_graph()
        label_of = lambda v: (graph.get(v, "field"), graph.get(v, "specialty"))
        assert not mutually_similar(graph, label_of, "Pat", "Fred")

    def test_compression_merges_pat_and_fred(self):
        compressed = compress(
            paper_graph(include_e1=True), attrs=("field", "specialty"),
            method="simulation",
        )
        assert compressed.class_of("Pat") == compressed.class_of("Fred")

    def test_compressed_graph_is_query_preserving_here(self):
        graph = paper_graph(include_e1=True)
        pattern = paper_pattern()
        # The pattern reads field+experience; compress over all three
        # attributes it may distinguish so compatibility holds.
        compressed = compress(
            graph, attrs=("field", "specialty", "experience"), method="simulation"
        )
        assert compressed.is_compatible(pattern)
        quotient_relation = match_bounded(compressed.quotient, pattern).relation
        recovered = decompress_relation(quotient_relation, compressed)
        assert recovered == match_bounded(graph, pattern).relation

    def test_both_fred_and_pat_collaborate_with_st_and_ba(self):
        graph = paper_graph(include_e1=True)
        for person in ("Pat", "Fred"):
            fields = {graph.get(s, "field") for s in graph.successors(person)}
            assert "ST" in fields
            assert "BA" in fields
