"""Tests for the bulk top-K ranking subsystem (`repro.ranking.topk`).

Covers the ranking edge cases the naive path never had tests for (empty
result graphs, weighted cycles, oversized ``k``, metric-name errors), the
engine's ranked-result cache and its `Graph.version` invalidation, the
pinned-query incremental re-ranking in ``update_graph``, and — most
importantly — differential identity: bulk ranking (sequential and
``workers=N``) must match the naive per-match ``rank_detail`` path
exactly, on seeded random graphs, for every metric.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.cache import cache_key
from repro.engine.engine import QueryEngine
from repro.errors import RankingError
from repro.expfinder import ExpFinder
from repro.graph.digraph import Graph
from repro.graph.generators import random_digraph
from repro.incremental.updates import EdgeInsertion, NodeInsertion
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern
from repro.ranking.metrics import METRICS, get_metric
from repro.ranking.social_impact import rank_detail, rank_matches
from repro.ranking.topk import (
    RankingContext,
    bulk_top_k_detail,
    bulk_top_k_scores,
    validate_k,
)

DIFFERENTIAL_SEEDS = range(25)


def two_team_graph() -> Graph:
    """Two disjoint SA->SD teams (update tests touch exactly one of them)."""
    graph = Graph()
    for team in (1, 2):
        graph.add_node(f"a{team}", field="SA", experience=9)
        graph.add_node(f"b{team}", field="SD", experience=5)
        graph.add_edge(f"a{team}", f"b{team}")
    return graph


def team_pattern(bound: int = 2) -> Pattern:
    return (
        PatternBuilder("team")
        .node("SA", "experience >= 5", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .edge("SA", "SD", bound)
        .build(require_output=True)
    )


def random_ranked_case(seed: int) -> tuple[Graph, Pattern]:
    """A seeded (graph, pattern-with-output) pair that usually matches."""
    rng = random.Random(seed)
    num_nodes = rng.randint(10, 36)
    num_edges = rng.randint(num_nodes, 3 * num_nodes)
    graph = random_digraph(num_nodes, num_edges, seed=seed)
    pattern = Pattern(f"ranked-s{seed}")
    pattern.add_node("OUT", rng.choice(['label == "L0"', "x >= 2", None]), output=True)
    names = ["OUT"]
    for index in range(rng.randint(0, 2)):
        name = f"Q{index}"
        pattern.add_node(name, rng.choice(['label == "L1"', "x >= 1", None]))
        names.append(name)
    pairs = [(a, b) for a in names for b in names if a != b]
    rng.shuffle(pairs)
    for source, target in pairs[: rng.randint(0, len(pairs))]:
        pattern.add_edge(source, target, rng.choice([1, 2, 3, None]))
    return graph, pattern


# ----------------------------------------------------------------------
# k validation — every metric, every entry point
# ----------------------------------------------------------------------
class TestValidateK:
    @pytest.mark.parametrize("bad", [0, -1, -7, True, 2.5, "3", None])
    def test_validate_k_rejects(self, bad):
        with pytest.raises(RankingError, match="positive integer"):
            validate_k(bad)

    def test_validate_k_accepts_positive_ints(self):
        assert validate_k(1) == 1
        assert validate_k(10) == 10

    @pytest.mark.parametrize("metric", sorted(METRICS))
    @pytest.mark.parametrize("bad", [0, -1])
    def test_engine_rejects_bad_k_for_every_metric(self, metric, bad):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        with pytest.raises(RankingError, match="positive integer"):
            engine.top_k("fig1", paper_pattern(), bad, metric=metric)

    def test_engine_rejects_bad_k_for_metric_objects(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        with pytest.raises(RankingError):
            engine.top_k("fig1", paper_pattern(), 0, metric=get_metric("harmonic"))

    def test_facade_rejects_bad_k(self):
        finder = ExpFinder()
        finder.add_graph("fig1", paper_graph())
        with pytest.raises(RankingError):
            finder.find_experts("fig1", paper_pattern(), k=0)

    def test_unknown_metric_name_raises_before_evaluation(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        with pytest.raises(RankingError, match="unknown metric"):
            engine.top_k("fig1", paper_pattern(), 1, metric="page-rank")


# ----------------------------------------------------------------------
# context + edge cases
# ----------------------------------------------------------------------
class TestRankingEdgeCases:
    def test_no_match_returns_empty(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        pattern = (
            PatternBuilder()
            .node("Z", 'field == "NOPE"', output=True)
            .build(require_output=True)
        )
        assert engine.top_k("fig1", pattern, 3) == []
        assert engine.top_k("fig1", pattern, 3, metric="degree") == []

    def test_edgeless_result_graph_ranks_infinite(self):
        graph = Graph()
        for name in ("b", "a", "c"):
            graph.add_node(name, field="SA", experience=9)
        pattern = (
            PatternBuilder()
            .node("SA", "experience >= 5", field="SA", output=True)
            .build(require_output=True)
        )
        context = RankingContext(match_bounded(graph, pattern).result_graph())
        ranked = bulk_top_k_detail(context, 10)
        assert [match.node for match in ranked] == ["a", "b", "c"]  # id tie-break
        assert all(match.rank == math.inf for match in ranked)
        assert all(match.impact_set_size == 0 for match in ranked)
        detail = ranked[0]
        assert detail.ancestors == {} and detail.descendants == {}

    def test_match_on_weighted_cycle_sees_itself(self):
        # a -> b -> a: each match reaches itself through the cycle, so the
        # source appears in its own impact set at its cycle length.
        graph = Graph()
        graph.add_node("a", field="SA", experience=9)
        graph.add_node("b", field="SD", experience=5)
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        pattern = (
            PatternBuilder()
            .node("SA", "experience >= 5", field="SA", output=True)
            .node("SD", "experience >= 2", field="SD")
            .edge("SA", "SD", 1)
            .edge("SD", "SA", 1)
            .build(require_output=True)
        )
        result_graph = match_bounded(graph, pattern).result_graph()
        context = RankingContext(result_graph)
        [best] = bulk_top_k_detail(context, 1)
        assert best.node == "a"
        assert best.descendants["a"] == 2  # around the cycle and back
        assert "a" in best.ancestors
        assert best == rank_detail(result_graph, "a")

    def test_k_larger_than_match_count_returns_all(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        ranked = engine.top_k("fig1", paper_pattern(), 99)
        assert [match.node for match in ranked] == ["Bob", "Walt"]
        scored = engine.top_k("fig1", paper_pattern(), 99, metric="closeness")
        assert len(scored) == 2

    def test_unknown_pattern_node_raises(self):
        context = RankingContext(
            match_bounded(paper_graph(), paper_pattern()).result_graph()
        )
        with pytest.raises(RankingError, match="unknown pattern node"):
            bulk_top_k_detail(context, 1, pattern_node="XX")

    def test_context_detail_rejects_non_member(self):
        context = RankingContext(
            match_bounded(paper_graph(), paper_pattern()).result_graph()
        )
        with pytest.raises(RankingError, match="not a node"):
            context.detail("Nobody")

    def test_bounds_are_admissible(self):
        # The cheap bound must never exceed the true score — the lazy
        # top-K's exactness hangs on this.
        for seed in range(8):
            graph, pattern = random_ranked_case(seed)
            result = match_bounded(graph, pattern)
            context = RankingContext(result.result_graph())
            for node in context.matches():
                for metric in METRICS.values():
                    assert metric.bound(context, node) <= metric.score_bulk(
                        context, node
                    ), f"inadmissible bound: seed={seed} node={node!r} {metric.name}"


# ----------------------------------------------------------------------
# differential identity: naive ≡ bulk ≡ parallel
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS, ids=lambda s: f"seed{s}")
    def test_bulk_identical_to_naive_rank_detail(self, seed):
        graph, pattern = random_ranked_case(seed)
        result_graph = match_bounded(graph, pattern).result_graph()
        naive = rank_matches(result_graph)
        bulk_all = bulk_top_k_detail(RankingContext(result_graph), None)
        assert bulk_all == naive, f"seed={seed}: bulk rank-all diverged"
        for k in (1, 2, 5):
            lazy = bulk_top_k_detail(RankingContext(result_graph), k)
            assert lazy == naive[:k], f"seed={seed} k={k}: lazy top-K diverged"

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS, ids=lambda s: f"seed{s}")
    def test_bulk_identical_to_rank_all_for_every_metric(self, seed):
        graph, pattern = random_ranked_case(seed)
        result_graph = match_bounded(graph, pattern).result_graph()
        for metric in METRICS.values():
            naive = metric.rank_all(result_graph)
            context = RankingContext(result_graph)
            assert bulk_top_k_scores(context, None, metric) == naive, (
                f"seed={seed} metric={metric.name}: bulk rank-all diverged"
            )
            for k in (1, 3):
                fresh = RankingContext(result_graph)
                assert bulk_top_k_scores(fresh, k, metric) == naive[:k], (
                    f"seed={seed} metric={metric.name} k={k}: lazy top-K diverged"
                )

    def test_parallel_identical_to_sequential(self):
        engine = QueryEngine()
        try:
            for seed in range(6):
                graph, pattern = random_ranked_case(seed)
                engine.register_graph(f"g{seed}", graph)
                sequential = engine.top_k(
                    f"g{seed}", pattern, 5, use_rank_cache=False
                )
                parallel = engine.top_k(
                    f"g{seed}", pattern, 5, workers=2, use_rank_cache=False
                )
                assert parallel == sequential, f"seed={seed}: workers=2 diverged"
        finally:
            engine.close()

    def test_parallel_pool_fanout_identical_on_large_match_set(self):
        # Enough matches to cross the executor's inline threshold, so the
        # scoring genuinely crosses the process boundary.
        graph = random_digraph(240, 720, seed=11)
        pattern = Pattern("broad")
        pattern.add_node("OUT", None, output=True)
        pattern.add_node("B", "x >= 1")
        pattern.add_edge("OUT", "B", 2)
        engine = QueryEngine()
        try:
            engine.register_graph("big", graph)
            sequential = engine.top_k("big", pattern, 500, use_rank_cache=False)
            assert len(sequential) >= 100  # the fan-out threshold is 64
            parallel = engine.top_k(
                "big", pattern, 500, workers=2, use_rank_cache=False
            )
            assert parallel == sequential
            naive = rank_matches(match_bounded(graph, pattern).result_graph())
            assert sequential == naive[:500]
        finally:
            engine.close()


# ----------------------------------------------------------------------
# ranked-result caching
# ----------------------------------------------------------------------
class TestRankCache:
    def test_repeat_top_k_hits_rank_cache(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        first = engine.top_k("fig1", paper_pattern(), 2)
        stats = engine.rank_cache_stats()
        assert stats["size"] == 1 and stats["misses"] == 1
        second = engine.top_k("fig1", paper_pattern(), 2)
        assert second == first
        assert engine.rank_cache_stats()["hits"] == 1

    def test_cached_context_shares_dijkstra_work_across_metrics(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        engine.top_k("fig1", paper_pattern(), 2)  # warms detail memos
        key = cache_key("fig1", paper_pattern())
        context = engine._rank_cache.peek(key).context
        runs_before = context.stats["dijkstra_runs"]
        engine.top_k("fig1", paper_pattern(), 2, metric="harmonic")
        # Harmonic needs the same out/in distances social impact memoized.
        assert context.stats["dijkstra_runs"] == runs_before

    def test_out_of_band_mutation_invalidates_by_graph_version(self):
        graph = two_team_graph()
        engine = QueryEngine()
        engine.register_graph("teams", graph)
        pattern = team_pattern()
        before = engine.top_k("teams", pattern, 10)
        assert {match.node for match in before} == {"a1", "a2"}
        # Mutate behind the engine's back: Graph.version still bumps.
        graph.add_node("b1x", field="SD", experience=5)
        graph.add_edge("b1x", "a1")
        after = engine.top_k("teams", pattern, 10)
        assert engine.rank_cache_stats()["stale_drops"] == 1
        fresh = rank_matches(match_bounded(graph, pattern).result_graph())
        assert after == fresh[:10]

    def test_custom_metrics_sharing_a_name_do_not_share_scores(self):
        # Two distinct custom metrics with the default name must not serve
        # each other's memoized scores off a cached context.
        from repro.ranking.metrics import RankingMetric

        class ConstMetric(RankingMetric):
            def __init__(self, value):
                self.value = value

            def score(self, result_graph, node):
                return self.value

        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        first = engine.top_k("fig1", paper_pattern(), 2, metric=ConstMetric(1.0))
        second = engine.top_k("fig1", paper_pattern(), 2, metric=ConstMetric(2.0))
        assert {score for _n, score in first} == {1.0}
        assert {score for _n, score in second} == {2.0}

    def test_use_rank_cache_false_skips_the_cache(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        engine.top_k("fig1", paper_pattern(), 1, use_rank_cache=False)
        assert engine.rank_cache_stats()["size"] == 0

    def test_reregistering_a_graph_drops_its_rank_entries(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        engine.top_k("fig1", paper_pattern(), 1)
        engine.register_graph("fig1", paper_graph(), replace=True)
        assert engine.rank_cache_stats()["size"] == 0


# ----------------------------------------------------------------------
# incremental re-ranking of pinned queries
# ----------------------------------------------------------------------
class TestIncrementalRerank:
    def test_update_reranks_only_touched_matches(self):
        graph = two_team_graph()
        engine = QueryEngine()
        engine.register_graph("teams", graph)
        pattern = team_pattern()
        engine.pin("teams", pattern)
        before = engine.top_k("teams", pattern, 10)
        assert {match.node for match in before} == {"a1", "a2"}
        key = cache_key("teams", pattern)
        untouched_before = engine._rank_cache.peek(key).context._details["a1"]

        # Grow team 2 only: a new SD within reach of a2.
        summary = engine.update_graph(
            "teams",
            [
                NodeInsertion.with_attrs("x2", field="SD", experience=5),
                EdgeInsertion("a2", "x2"),
            ],
        )
        maintenance = summary["rank_maintenance"][pattern.canonical_key()]
        assert maintenance["reused"] >= 1  # a1's ranking survived untouched
        assert maintenance["rescored"] >= 1  # a2 was re-ranked

        after = engine.top_k("teams", pattern, 10)
        fresh = rank_matches(match_bounded(graph, pattern).result_graph())
        assert after == fresh[:10]
        # The untouched match was *not* re-ranked: same object, not a copy.
        untouched_after = engine._rank_cache.peek(key).context._details["a1"]
        assert untouched_after is untouched_before
        # And the refreshed entry serves reads without a stale drop.
        assert engine.rank_cache_stats()["stale_drops"] == 0

    def test_update_reranks_against_recompute_on_random_graphs(self):
        for seed in range(4):
            rng = random.Random(seed + 100)
            graph = random_digraph(30, 90, seed=seed)
            pattern = Pattern("pinned")
            pattern.add_node("OUT", 'label == "L0"', output=True)
            pattern.add_node("B", 'label == "L1"')
            pattern.add_edge("OUT", "B", 2)
            engine = QueryEngine()
            engine.register_graph("net", graph)
            engine.pin("net", pattern)
            engine.top_k("net", pattern, 5)
            nodes = sorted(graph.nodes(), key=repr)
            for _round in range(3):
                source, target = rng.sample(nodes, 2)
                if graph.has_edge(source, target):
                    continue
                engine.update_graph("net", [EdgeInsertion(source, target)])
                maintained = engine.top_k("net", pattern, 5)
                recomputed = rank_matches(
                    match_bounded(graph, pattern).result_graph()
                )[:5]
                assert maintained == recomputed, (
                    f"seed={seed}: maintained ranking diverged after update"
                )

    def test_unpinned_queries_lose_rank_entries_on_update(self):
        graph = two_team_graph()
        engine = QueryEngine()
        engine.register_graph("teams", graph)
        pattern = team_pattern()
        engine.top_k("teams", pattern, 10)  # cached but not pinned
        assert engine.rank_cache_stats()["size"] == 1
        engine.update_graph(
            "teams",
            [
                NodeInsertion.with_attrs("x2", field="SD", experience=5),
                EdgeInsertion("a2", "x2"),
            ],
        )
        assert engine.rank_cache_stats()["size"] == 0


# ----------------------------------------------------------------------
# facade forwarding
# ----------------------------------------------------------------------
class TestFacadeForwarding:
    def test_find_experts_forwards_workers(self):
        finder = ExpFinder()
        finder.add_graph("fig1", paper_graph())
        try:
            sequential = finder.find_experts("fig1", paper_pattern(), k=2)
            parallel = finder.find_experts(
                "fig1", paper_pattern(), k=2, workers=2, use_rank_cache=False
            )
            assert parallel == sequential
        finally:
            finder.engine.close()

    def test_find_experts_forwards_evaluate_kwargs(self):
        finder = ExpFinder()
        finder.add_graph("fig1", paper_graph())
        ranked = finder.find_experts(
            "fig1", paper_pattern(), k=1, use_cache=False, cache_result=False
        )
        assert [match.node for match in ranked] == ["Bob"]
        # The kwargs really reached evaluate: nothing was cached.
        assert finder.engine.cache_stats()["size"] == 0
