"""Error-hierarchy guarantees and miscellaneous engine edge cases."""

import pytest

import repro.errors as errors
from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
from repro.engine.engine import QueryEngine
from repro.incremental.updates import EdgeInsertion
from repro.pattern.builder import PatternBuilder


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        error_types = [
            getattr(errors, name)
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        ]
        assert len(error_types) >= 10
        for error_type in error_types:
            assert issubclass(error_type, errors.ReproError)

    def test_one_except_clause_catches_everything(self):
        from repro.graph.digraph import Graph

        try:
            Graph().remove_node("missing")
        except errors.ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("GraphError escaped the ReproError umbrella")

    def test_errors_are_not_each_other(self):
        assert not issubclass(errors.GraphError, errors.PatternError)
        assert not issubclass(errors.CacheError, errors.StorageError)


class TestEngineEdges:
    def test_cache_result_false_leaves_cache_cold(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        engine.evaluate("fig1", paper_pattern(), cache_result=False)
        result = engine.evaluate("fig1", paper_pattern())
        assert result.stats["route"] == "direct"  # nothing was cached

    def test_pin_upgrades_existing_unpinned_entry(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        engine.evaluate("fig1", paper_pattern())   # cached, unpinned
        engine.pin("fig1", paper_pattern())
        assert engine.cache_stats()["pinned"] == 1
        # The pinned entry survives an update and stays correct.
        engine.update_graph("fig1", [EdgeInsertion(*EDGE_E1)])
        result = engine.evaluate("fig1", paper_pattern())
        assert result.stats["route"] == "cache"
        assert "Fred" in result.relation.matches_of("SD")

    def test_update_with_empty_batch_is_a_version_bump(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        summary = engine.update_graph("fig1", [])
        assert summary["applied"] == 0
        assert summary["graph_version"] == 1

    def test_register_replace_clears_stale_cache(self):
        engine = QueryEngine()
        engine.register_graph("g", paper_graph())
        engine.evaluate("g", paper_pattern())
        engine.register_graph("g", paper_graph(include_e1=True), replace=True)
        result = engine.evaluate("g", paper_pattern())
        assert result.stats["route"] == "direct"  # old cache entry dropped
        assert "Fred" in result.relation.matches_of("SD")

    def test_evaluate_validates_pattern(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        from repro.errors import PatternError
        from repro.pattern.pattern import Pattern

        with pytest.raises(PatternError):
            engine.evaluate("fig1", Pattern())

    def test_same_pattern_different_graphs_cached_separately(self):
        engine = QueryEngine()
        engine.register_graph("without", paper_graph())
        engine.register_graph("with", paper_graph(include_e1=True))
        first = engine.evaluate("without", paper_pattern())
        second = engine.evaluate("with", paper_pattern())
        assert first.relation != second.relation
        assert engine.evaluate("without", paper_pattern()).relation == first.relation

    def test_unbounded_pattern_goes_through_bounded_algorithm(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        pattern = (
            PatternBuilder()
            .node("SA", field="SA", output=True)
            .node("ST", field="ST")
            .edge("SA", "ST", None)
            .build()
        )
        result = engine.evaluate("fig1", pattern)
        assert result.stats["algorithm"] == "bounded-simulation"
        assert result.relation.matches_of("SA") == {"Bob", "Walt"}
