"""Batch query evaluation: equivalence, shared work, CLI, error surfaces."""

from typing import Any, Mapping

import pytest

from repro.cli import main
from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.engine import QueryEngine
from repro.errors import EvaluationError
from repro.expfinder import ExpFinder
from repro.graph.generators import collaboration_graph
from repro.graph.io import save_graph
from repro.pattern.builder import PatternBuilder
from repro.pattern.parser import save_pattern
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import Predicate, parse_conjunction


def team_patterns(count: int) -> list[Pattern]:
    """``count`` hiring queries drawn from a small predicate vocabulary, so
    a batch shares candidate work across them."""
    patterns = []
    for i in range(count):
        senior = 4 + (i % 3)
        bound = 1 + (i % 2)
        patterns.append(
            PatternBuilder(f"team-{i}")
            .node("SA", f"experience >= {senior}", field="SA", output=True)
            .node("SD", "experience >= 2", field="SD")
            .node("ST", field="ST")
            .edge("SA", "SD", bound)
            .edge("SD", "ST", bound)
            .build()
        )
    return patterns


class CountingPredicate(Predicate):
    """Wraps a predicate and counts evaluations in a shared mutable cell.

    Not an indexable type, so candidate generation must actually evaluate
    it — which is exactly what the shared-work assertion needs to observe.
    """

    __slots__ = ("inner", "counter")

    def __init__(self, inner: Predicate, counter: list) -> None:
        self.inner = inner
        self.counter = counter

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        self.counter[0] += 1
        return self.inner.evaluate(attrs)

    @property
    def attrs(self):
        return self.inner.attrs

    def key(self) -> tuple:
        return ("counting",) + self.inner.key()

    def to_dict(self) -> dict:
        raise NotImplementedError("test-only predicate")


def counted_patterns(count: int, counter: list) -> list[Pattern]:
    patterns = []
    for i in range(count):
        senior = 4 + (i % 3)
        pattern = Pattern(f"counted-{i}")
        pattern.add_node(
            "SA",
            CountingPredicate(
                parse_conjunction(f'field == "SA", experience >= {senior}'), counter
            ),
        )
        pattern.add_node(
            "SD", CountingPredicate(parse_conjunction('field == "SD"'), counter)
        )
        pattern.add_edge("SA", "SD", 1 + (i % 2))
        patterns.append(pattern)
    return patterns


class TestEvaluateMany:
    @pytest.fixture
    def engine(self):
        engine = QueryEngine()
        engine.register_graph("g", collaboration_graph(250, seed=4))
        return engine

    def test_matches_individual_evaluates(self, engine):
        patterns = team_patterns(6)
        batch = engine.evaluate_many("g", patterns, use_cache=False, cache_result=False)
        for pattern, result in zip(patterns, batch):
            solo = engine.evaluate("g", pattern, use_cache=False, cache_result=False)
            assert result.relation == solo.relation

    def test_results_in_input_order(self, engine):
        patterns = team_patterns(4)
        results = engine.evaluate_many("g", patterns)
        assert [r.pattern for r in results] == patterns

    def test_batch_stats_attached(self, engine):
        results = engine.evaluate_many("g", team_patterns(5))
        stats = results[0].stats
        assert stats["batch"]["size"] == 5
        assert stats["batch"]["distinct_predicates"] > 0
        assert stats["route"] in ("direct", "cache")
        assert stats["candidate_source"] == "precomputed"

    def test_duplicate_query_reuses_batch_result(self, engine):
        pattern = team_patterns(1)[0]
        results = engine.evaluate_many("g", [pattern, pattern], use_cache=False)
        assert results[0].stats["route"] == "direct"
        assert results[1].stats["route"] == "cache"
        # The stamped plan agrees with the executed route.
        assert results[1].stats["plan"].route == "cache"
        assert results[0].relation == results[1].relation

    def test_cache_route_served_from_cache(self, engine):
        pattern = team_patterns(1)[0]
        engine.evaluate("g", pattern)
        results = engine.evaluate_many("g", [pattern])
        assert results[0].stats["route"] == "cache"

    def test_batch_populates_cache(self, engine):
        pattern = team_patterns(1)[0]
        engine.evaluate_many("g", [pattern])
        assert engine.evaluate("g", pattern).stats["route"] == "cache"

    def test_batch_on_paper_example(self):
        engine = QueryEngine()
        engine.register_graph("fig1", paper_graph())
        results = engine.evaluate_many("fig1", [paper_pattern()] * 3)
        for result in results:
            assert sorted(result.relation.matches_of("SA")) == ["Bob", "Walt"]

    def test_facade_match_many(self):
        finder = ExpFinder()
        finder.add_graph("fig1", paper_graph())
        results = finder.match_many("fig1", [paper_pattern(), paper_pattern()])
        assert len(results) == 2 and all(r.is_match for r in results)

    def test_empty_batch(self, engine):
        assert engine.evaluate_many("g", []) == []


class TestSharedPredicateWork:
    def test_batch_does_fewer_predicate_evaluations(self):
        """Acceptance criterion: evaluate_many over 20 patterns performs
        fewer total predicate evaluations than 20 separate evaluate calls."""
        graph = collaboration_graph(300, seed=9)

        sequential_counter = [0]
        engine = QueryEngine()
        engine.register_graph("g", graph)
        for pattern in counted_patterns(20, sequential_counter):
            engine.evaluate("g", pattern, use_cache=False, cache_result=False)
        sequential = sequential_counter[0]

        batch_counter = [0]
        engine = QueryEngine()
        engine.register_graph("g", graph)
        engine.evaluate_many(
            "g",
            counted_patterns(20, batch_counter),
            use_cache=False,
            cache_result=False,
        )
        batched = batch_counter[0]

        assert batched < sequential
        # 20 patterns share 4 distinct predicates (3 SA thresholds + 1 SD),
        # so the batch should do roughly 4/40ths of the sequential work.
        assert batched <= sequential // 5

    def test_batch_and_sequential_agree_under_counting(self):
        graph = collaboration_graph(150, seed=2)
        engine = QueryEngine()
        engine.register_graph("g", graph)
        counter = [0]
        patterns = counted_patterns(6, counter)
        batch = engine.evaluate_many("g", patterns, use_cache=False, cache_result=False)
        for pattern, result in zip(patterns, batch):
            solo = engine.evaluate("g", pattern, use_cache=False, cache_result=False)
            assert result.relation == solo.relation


class TestUnknownGraphErrors:
    """Regression: unregistered graph names surface EvaluationError with a
    helpful message, never a bare KeyError."""

    @pytest.fixture
    def engine(self):
        engine = QueryEngine()
        engine.register_graph("known", paper_graph())
        return engine

    def test_evaluate_unknown_graph(self, engine):
        with pytest.raises(EvaluationError, match="unknown graph: 'nope'"):
            engine.evaluate("nope", paper_pattern())

    def test_evaluate_mentions_registered_graphs(self, engine):
        with pytest.raises(EvaluationError, match="registered: known"):
            engine.evaluate("nope", paper_pattern())

    def test_evaluate_many_unknown_graph(self, engine):
        with pytest.raises(EvaluationError, match="unknown graph"):
            engine.evaluate_many("nope", [paper_pattern()])

    def test_top_k_unknown_graph(self, engine):
        with pytest.raises(EvaluationError, match="unknown graph"):
            engine.top_k("nope", paper_pattern(), 3)

    def test_never_a_key_error(self, engine):
        for call in (
            lambda: engine.evaluate("nope", paper_pattern()),
            lambda: engine.evaluate_many("nope", [paper_pattern()]),
            lambda: engine.explain("nope", paper_pattern()),
            lambda: engine.update_graph("nope", []),
        ):
            with pytest.raises(EvaluationError):
                call()


class TestCliBatch:
    @pytest.fixture
    def graph_file(self, tmp_path):
        return str(save_graph(paper_graph(), tmp_path / "fig1.json"))

    @pytest.fixture
    def pattern_file(self, tmp_path):
        return str(save_pattern(paper_pattern(), tmp_path / "team.pattern"))

    def test_batch_two_queries(self, graph_file, pattern_file, capsys):
        code = main(
            ["batch", "--graph", graph_file,
             "--pattern", pattern_file, "--pattern", pattern_file]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "match" in out
        assert "batch: 2 queries" in out

    def test_batch_verbose_prints_relations(self, graph_file, pattern_file, capsys):
        code = main(["batch", "--graph", graph_file,
                     "--pattern", pattern_file, "--verbose"])
        assert code == 0
        assert "SA: Bob, Walt" in capsys.readouterr().out

    def test_batch_no_match_exit_code(self, graph_file, tmp_path, capsys):
        pattern = Pattern("none")
        pattern.add_node("X", 'field == "NOPE"')
        spec = str(save_pattern(pattern, tmp_path / "none.pattern"))
        assert main(["batch", "--graph", graph_file, "--pattern", spec]) == 1
        assert "no-match" in capsys.readouterr().out
