"""Unit tests for incremental plain simulation."""

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import random_digraph
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import EdgeDeletion, EdgeInsertion, random_updates
from repro.matching.reference import naive_simulation
from repro.matching.simulation import match_simulation
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


def chain_ab():
    return (
        PatternBuilder()
        .node("A", 'label == "A"')
        .node("B", 'label == "B"')
        .edge("A", "B", 1)
        .build()
    )


def cycle_ab():
    return (
        PatternBuilder()
        .node("A", 'label == "A"')
        .node("B", 'label == "B"')
        .edge("A", "B", 1)
        .edge("B", "A", 1)
        .build()
    )


class TestInsertion:
    def test_insertion_creates_match(self):
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, chain_ab())
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("a", "b"))
        assert sorted(inc.relation().pairs()) == [("A", "a"), ("B", "b")]

    def test_insertion_resurrects_chain(self):
        # c was never matched; inserting b->c revives b, which revives a.
        g = make_labelled_graph(
            [("a", "b")], {"a": "A", "b": "B", "c": "C"}
        )
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .node("C", 'label == "C"')
            .edge("A", "B", 1)
            .edge("B", "C", 1)
            .build()
        )
        inc = IncrementalSimulation(g, q)
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("b", "c"))
        assert inc.relation().num_pairs == 3

    def test_mutual_resurrection_on_cyclic_pattern(self):
        """The optimistic local fixpoint must revive mutually-dependent pairs."""
        g = make_labelled_graph([("b", "a")], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, cycle_ab())
        assert inc.relation().is_empty
        inc.apply(EdgeInsertion("a", "b"))  # now a->b->a: both valid together
        assert inc.relation().num_pairs == 2
        inc.check_invariants()

    def test_irrelevant_insertion_changes_nothing(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B", "c": "C"})
        inc = IncrementalSimulation(g, chain_ab())
        before = inc.relation()
        inc.apply(EdgeInsertion("c", "a"))
        assert inc.relation() == before


class TestDeletion:
    def test_deletion_removes_match(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, chain_ab())
        inc.apply(EdgeDeletion("a", "b"))
        assert inc.relation().is_empty

    def test_deletion_with_remaining_witness_keeps_match(self):
        g = make_labelled_graph(
            [("a", "b1"), ("a", "b2")], {"a": "A", "b1": "B", "b2": "B"}
        )
        inc = IncrementalSimulation(g, chain_ab())
        inc.apply(EdgeDeletion("a", "b1"))
        # a still has the witness b2; b1 keeps matching B because membership
        # depends only on predicates and *outgoing* requirements.
        assert inc.relation().matches_of("A") == {"a"}
        assert inc.relation().matches_of("B") == {"b1", "b2"}
        inc.apply(EdgeDeletion("a", "b2"))
        assert inc.relation().is_empty

    def test_deletion_cascades_upstream(self):
        g = make_labelled_graph(
            [("a", "b"), ("b", "c")], {"a": "A", "b": "B", "c": "C"}
        )
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .node("C", 'label == "C"')
            .edge("A", "B", 1)
            .edge("B", "C", 1)
            .build()
        )
        inc = IncrementalSimulation(g, q)
        assert inc.relation().num_pairs == 3
        inc.apply(EdgeDeletion("b", "c"))
        assert inc.relation().is_empty
        inc.check_invariants()


class TestRoundTripsAndOracle:
    def test_insert_then_delete_returns_to_start(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B", "c": "B"})
        inc = IncrementalSimulation(g, chain_ab())
        before = inc.relation()
        inc.apply(EdgeInsertion("a", "c"))
        inc.apply(EdgeDeletion("a", "c"))
        assert inc.relation() == before
        inc.check_invariants()

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_batch_after_random_updates(self, seed):
        g = random_digraph(15, 35, num_labels=3, seed=seed)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .node("C", 'label == "L2"')
            .edge("A", "B", 1)
            .edge("B", "C", 1)
            .edge("C", "A", 1)
            .build()
        )
        inc = IncrementalSimulation(g, q)
        for update in random_updates(g, 25, seed=seed + 50):
            inc.apply(update)
            assert inc.relation() == naive_simulation(g, q)
        inc.check_invariants()

    def test_apply_batch_equals_unit_sequence(self):
        g1 = random_digraph(12, 25, num_labels=2, seed=1)
        g2 = g1.copy()
        q = chain_ab_for_random()
        inc_batch = IncrementalSimulation(g1, q)
        inc_units = IncrementalSimulation(g2, q)
        batch = random_updates(g1, 12, seed=2)
        inc_batch.apply_batch(batch)
        for update in batch:
            inc_units.apply(update)
        assert inc_batch.relation() == inc_units.relation()

    def test_initial_state_matches_batch_matcher(self):
        g = random_digraph(15, 30, num_labels=2, seed=4)
        q = chain_ab_for_random()
        assert IncrementalSimulation(g, q).relation() == match_simulation(g, q).relation

    def test_apply_to_graph_false_mode(self):
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, chain_ab())
        g.add_edge("a", "b")  # caller mutates the graph first
        inc.apply(EdgeInsertion("a", "b"), apply_to_graph=False)
        assert inc.relation().num_pairs == 2
        inc.check_invariants()

    def test_unknown_update_type_rejected(self):
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        inc = IncrementalSimulation(g, chain_ab())
        from repro.errors import UpdateError

        with pytest.raises(UpdateError):
            inc.apply("not an update")  # type: ignore[arg-type]


def chain_ab_for_random():
    return (
        PatternBuilder()
        .node("A", 'label == "L0"')
        .node("B", 'label == "L1"')
        .edge("A", "B", 1)
        .build()
    )
