"""Unit tests for Pattern construction and inspection."""

import pytest

from repro.errors import PatternError
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import AlwaysTrue, Cmp


@pytest.fixture
def team() -> Pattern:
    q = Pattern(name="team")
    q.add_node("SA", 'field == "SA", experience >= 5', output=True)
    q.add_node("SD", 'field == "SD"')
    q.add_node("ST", 'field == "ST"')
    q.add_edge("SA", "SD", 2)
    q.add_edge("SD", "ST", 1)
    return q


class TestConstruction:
    def test_counts(self, team: Pattern):
        assert team.num_nodes == 3
        assert team.num_edges == 2
        assert team.size == 5

    def test_add_node_with_predicate_object(self):
        q = Pattern()
        q.add_node("A", Cmp("x", ">=", 1))
        assert q.predicate("A") == Cmp("x", ">=", 1)

    def test_add_node_without_condition(self):
        q = Pattern()
        q.add_node("A")
        assert isinstance(q.predicate("A"), AlwaysTrue)

    def test_duplicate_node_raises(self):
        q = Pattern()
        q.add_node("A")
        with pytest.raises(PatternError, match="duplicate"):
            q.add_node("A")

    def test_non_string_node_raises(self):
        q = Pattern()
        with pytest.raises(PatternError):
            q.add_node(7)  # type: ignore[arg-type]

    def test_bad_condition_type_raises(self):
        q = Pattern()
        with pytest.raises(PatternError):
            q.add_node("A", condition=42)  # type: ignore[arg-type]

    def test_edge_requires_known_nodes(self):
        q = Pattern()
        q.add_node("A")
        with pytest.raises(PatternError, match="unknown pattern node"):
            q.add_edge("A", "B")
        with pytest.raises(PatternError, match="unknown pattern node"):
            q.add_edge("B", "A")

    def test_duplicate_edge_raises(self, team: Pattern):
        with pytest.raises(PatternError, match="duplicate pattern edge"):
            team.add_edge("SA", "SD", 3)

    @pytest.mark.parametrize("bound", [0, -1, 1.5, "2"])
    def test_invalid_bounds_raise(self, bound):
        q = Pattern()
        q.add_node("A")
        q.add_node("B")
        with pytest.raises(PatternError, match="bound"):
            q.add_edge("A", "B", bound)  # type: ignore[arg-type]

    def test_unbounded_edge(self):
        q = Pattern()
        q.add_node("A")
        q.add_node("B")
        q.add_edge("A", "B", None)
        assert q.bound("A", "B") is None

    def test_self_loop_edge(self):
        q = Pattern()
        q.add_node("A")
        q.add_edge("A", "A", 2)
        assert q.bound("A", "A") == 2


class TestOutputNode:
    def test_output_via_add_node(self, team: Pattern):
        assert team.output_node == "SA"

    def test_set_output_later(self):
        q = Pattern()
        q.add_node("A")
        q.set_output("A")
        assert q.output_node == "A"

    def test_set_output_unknown_raises(self):
        q = Pattern()
        with pytest.raises(PatternError):
            q.set_output("A")

    def test_validate_require_output(self):
        q = Pattern()
        q.add_node("A")
        q.validate()  # fine without output
        with pytest.raises(PatternError, match="output"):
            q.validate(require_output=True)

    def test_validate_empty_pattern(self):
        with pytest.raises(PatternError, match="no nodes"):
            Pattern().validate()


class TestInspection:
    def test_edges_iteration(self, team: Pattern):
        assert set(team.edges()) == {("SA", "SD", 2), ("SD", "ST", 1)}

    def test_out_and_in_edges(self, team: Pattern):
        assert dict(team.out_edges("SA")) == {"SD": 2}
        assert dict(team.in_edges("ST")) == {"SD": 1}
        assert dict(team.out_edges("ST")) == {}

    def test_unknown_node_accessors_raise(self, team: Pattern):
        with pytest.raises(PatternError):
            team.predicate("zzz")
        with pytest.raises(PatternError):
            list(team.out_edges("zzz"))
        with pytest.raises(PatternError):
            list(team.in_edges("zzz"))
        with pytest.raises(PatternError):
            team.bound("SA", "ST")

    def test_is_simulation_pattern(self, team: Pattern):
        assert not team.is_simulation_pattern
        q = Pattern()
        q.add_node("A")
        q.add_node("B")
        q.add_edge("A", "B", 1)
        assert q.is_simulation_pattern

    def test_max_bound(self, team: Pattern):
        assert team.max_bound == 2

    def test_max_bound_unbounded(self):
        q = Pattern()
        q.add_node("A")
        q.add_node("B")
        q.add_edge("A", "B", None)
        assert q.max_bound is None

    def test_max_bound_edgeless(self):
        q = Pattern()
        q.add_node("A")
        assert q.max_bound == 1

    def test_referenced_attrs(self, team: Pattern):
        assert team.referenced_attrs() == frozenset({"field", "experience"})

    def test_contains(self, team: Pattern):
        assert "SA" in team
        assert "zzz" not in team

    def test_describe_mentions_everything(self, team: Pattern):
        text = team.describe()
        assert "SA*" in text
        assert "edge SA -> SD : 2" in text


class TestIdentity:
    def test_equal_patterns_with_different_insertion_order(self):
        q1 = Pattern()
        q1.add_node("A", "x >= 1")
        q1.add_node("B", "y >= 2")
        q1.add_edge("A", "B", 2)
        q2 = Pattern()
        q2.add_node("B", "y >= 2")
        q2.add_node("A", "x >= 1")
        q2.add_edge("A", "B", 2)
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_different_bounds_not_equal(self):
        q1 = Pattern()
        q1.add_node("A")
        q1.add_node("B")
        q1.add_edge("A", "B", 1)
        q2 = Pattern()
        q2.add_node("A")
        q2.add_node("B")
        q2.add_edge("A", "B", 2)
        assert q1 != q2

    def test_output_node_part_of_identity(self):
        q1 = Pattern()
        q1.add_node("A", output=True)
        q2 = Pattern()
        q2.add_node("A")
        assert q1 != q2

    def test_unbounded_and_bound_differ(self):
        q1 = Pattern()
        q1.add_node("A")
        q1.add_node("B")
        q1.add_edge("A", "B", None)
        q2 = Pattern()
        q2.add_node("A")
        q2.add_node("B")
        q2.add_edge("A", "B", 1)
        assert q1.canonical_key() != q2.canonical_key()


class TestSerialization:
    def test_dict_round_trip(self, team: Pattern):
        assert Pattern.from_dict(team.to_dict()) == team

    def test_round_trip_preserves_output(self, team: Pattern):
        assert Pattern.from_dict(team.to_dict()).output_node == "SA"

    def test_round_trip_unbounded(self):
        q = Pattern()
        q.add_node("A")
        q.add_node("B")
        q.add_edge("A", "B", None)
        assert Pattern.from_dict(q.to_dict()).bound("A", "B") is None

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(PatternError):
            Pattern.from_dict({"format": "other"})
        with pytest.raises(PatternError):
            Pattern.from_dict({"format": "repro.pattern", "nodes": [{"bad": 1}]})
