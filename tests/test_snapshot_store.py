"""Binary snapshot persistence: format, corruption, fault-in, shipping.

The byte-identity of store-served evaluation lives in
tests/test_differential.py; this module covers the persistence machinery
itself — the on-disk format and its validation failures, the catalogue
CRUD, cache fault-in accounting, atomic writes, and path shipping into
spawn-started pool workers.
"""

from __future__ import annotations

import json
import pickle
import zlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.cache import OracleCache, SnapshotCache
from repro.engine.engine import QueryEngine
from repro.engine.estimator import QueryBudget
from repro.engine.parallel import ParallelExecutor
from repro.engine.storage import (
    _HEADER,
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_KIND_FROZEN,
    SNAPSHOT_MAGIC,
    GraphStore,
    load_frozen_file,
    load_oracle_file,
    snapshot_file_info,
    write_frozen_file,
    write_snapshot_file,
)
from repro.errors import EvaluationError, StorageError
from repro.graph.digraph import Graph
from repro.graph.frozen import FrozenGraph
from repro.graph.io import atomic_write_bytes
from repro.graph.oracle import DistanceOracle
from repro.matching.bounded import match_bounded
from repro.matching.simulation import simulation_candidates


@pytest.fixture
def store(tmp_path) -> GraphStore:
    return GraphStore(tmp_path / "catalog")


@pytest.fixture
def frozen(fig1) -> FrozenGraph:
    return FrozenGraph.freeze(fig1)


@pytest.fixture
def oracle(frozen) -> DistanceOracle:
    return DistanceOracle.build(frozen, cap=4)


def _patch_header(path, **fields) -> None:
    """Rewrite header fields in place (the checksum does not cover them)."""
    raw = bytearray(path.read_bytes())
    names = (
        "magic", "version", "kind", "flags",
        "source_version", "meta_length", "checksum",
    )
    values = dict(zip(names, _HEADER.unpack_from(raw)))
    values.update(fields)
    raw[: _HEADER.size] = _HEADER.pack(*(values[name] for name in names))
    path.write_bytes(bytes(raw))


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------

class TestFrozenRoundTrip:
    def test_graph_and_buffers_survive(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        loaded = store.load_snapshot("team", expected_version=fig1.version)
        assert loaded.source_version == frozen.source_version
        assert loaded.matches(fig1)
        assert loaded.to_graph() == fig1
        assert list(loaded.out_offsets) == list(frozen.out_offsets)
        assert list(loaded.out_targets) == list(frozen.out_targets)
        assert list(loaded.in_offsets) == list(frozen.in_offsets)
        assert list(loaded.in_targets) == list(frozen.in_targets)
        assert loaded.labels == frozen.labels

    def test_load_is_zero_copy(self, store, frozen):
        store.save_snapshot("team", frozen)
        loaded = store.load_snapshot("team")
        # The CSR buffers are casts over the shared mmap, not copies.
        assert isinstance(loaded.out_targets, memoryview)
        assert isinstance(loaded.in_offsets, memoryview)
        assert loaded.path == store.root / "snapshots" / "team.frozen.snap"

    def test_attributes_survive(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        loaded = store.load_snapshot("team")
        for node in fig1.nodes():
            assert loaded.node_attrs(node) == fig1.attrs(node)

    def test_kernel_parity_from_disk(self, store, fig1, fig1_query, frozen):
        store.save_snapshot("team", frozen)
        loaded = store.load_snapshot("team", expected_version=fig1.version)
        expected = match_bounded(fig1, fig1_query)
        got = match_bounded(fig1, fig1_query, frozen=loaded)
        assert got.relation == expected.relation


class TestOracleRoundTrip:
    def test_labels_and_distances_survive(self, store, fig1, frozen, oracle):
        store.save_oracle("team", oracle)
        loaded = store.load_oracle("team", expected_version=fig1.version)
        assert loaded.source_version == oracle.source_version
        assert loaded.cap == oracle.cap
        assert loaded.compatible_with(frozen)
        n = len(frozen.labels)
        for source in range(n):
            for target in range(n):
                if source != target:
                    assert loaded.distance(source, target) == oracle.distance(
                        source, target
                    )

    def test_reach_sets_materialize_lazily(self, store, frozen, oracle):
        store.save_oracle("team", oracle)
        loaded = store.load_oracle("team")
        # stats() must not force materialization, but report the entries.
        assert loaded.stats()["reach_entries"] == oracle.stats()["reach_entries"]
        assert loaded.reach_out == oracle.reach_out
        assert loaded.reach_in == oracle.reach_in

    def test_uncapped_oracle_round_trips(self, store, frozen):
        full = DistanceOracle.build(frozen)
        store.save_oracle("full", full)
        loaded = store.load_oracle("full")
        assert loaded.cap is None
        assert loaded.distance(0, 1) == full.distance(0, 1)


@st.composite
def json_safe_graphs(draw):
    """Random digraphs whose attributes survive a JSON round trip."""
    num_nodes = draw(st.integers(min_value=0, max_value=12))
    graph = Graph(name="prop")
    values = st.one_of(
        st.integers(-3, 3), st.booleans(), st.text(max_size=3), st.none()
    )
    for index in range(num_nodes):
        attrs = draw(
            st.dictionaries(st.sampled_from(["a", "b", "c"]), values, max_size=3)
        )
        graph.add_node(index, **attrs)
    if num_nodes:
        pairs = st.tuples(
            st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
        )
        for source, target in draw(st.lists(pairs, max_size=3 * num_nodes)):
            if not graph.has_edge(source, target):
                graph.add_edge(source, target)
    return graph


@settings(max_examples=80, deadline=None)
@given(json_safe_graphs())
def test_snapshot_file_round_trip_property(tmp_path_factory, graph):
    """``FrozenGraph -> file -> mmap -> to_graph()`` is exact."""
    path = tmp_path_factory.mktemp("prop") / "g.frozen.snap"
    frozen = FrozenGraph.freeze(graph)
    write_frozen_file(path, frozen)
    loaded = load_frozen_file(path, expected_version=graph.version)
    rebuilt = loaded.to_graph()
    assert rebuilt == graph
    assert list(rebuilt.nodes()) == list(graph.nodes())
    assert list(rebuilt.edges()) == list(graph.edges())


# ----------------------------------------------------------------------
# corruption: every failure is a distinct StorageError
# ----------------------------------------------------------------------

class TestCorruption:
    @pytest.fixture
    def snap(self, store, frozen):
        store.save_snapshot("team", frozen)
        return store.root / "snapshots" / "team.frozen.snap"

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="snapshot file not found"):
            load_frozen_file(tmp_path / "nope.snap")
        with pytest.raises(StorageError, match="snapshot file not found"):
            snapshot_file_info(tmp_path / "nope.snap")

    def test_missing_store_names(self, store):
        with pytest.raises(StorageError, match="no stored snapshot named 'x'"):
            store.load_snapshot("x")
        with pytest.raises(StorageError, match="no stored oracle named 'x'"):
            store.load_oracle("x")

    def test_empty_file(self, snap):
        # A zero-length file is a torn header write, not an mmap quirk:
        # the distinct "truncated header" error fires before mmap would
        # fail with its own "cannot mmap an empty file" ValueError.
        snap.write_bytes(b"")
        with pytest.raises(StorageError, match="truncated header"):
            load_frozen_file(snap)
        with pytest.raises(StorageError, match="truncated header"):
            snapshot_file_info(snap)

    def test_truncated_header(self, snap):
        snap.write_bytes(snap.read_bytes()[:16])
        with pytest.raises(
            StorageError, match="truncated header.*smaller than the 40-byte header"
        ):
            load_frozen_file(snap)
        with pytest.raises(StorageError, match="truncated header"):
            snapshot_file_info(snap)

    @pytest.mark.parametrize("size", [1, 8, 39])
    def test_every_sub_header_size_is_distinct(self, snap, size):
        snap.write_bytes(snap.read_bytes()[:size])
        with pytest.raises(StorageError, match="truncated header"):
            load_frozen_file(snap)

    def test_bad_magic(self, snap):
        _patch_header(snap, magic=b"NOTASNAP")
        with pytest.raises(StorageError, match="not a snapshot file"):
            load_frozen_file(snap)

    def test_unsupported_format_version(self, snap):
        _patch_header(snap, version=SNAPSHOT_FORMAT_VERSION + 41)
        with pytest.raises(StorageError, match="unsupported snapshot format version"):
            load_frozen_file(snap)

    def test_unknown_kind(self, snap):
        _patch_header(snap, kind=7)
        with pytest.raises(StorageError, match="unknown snapshot kind 7"):
            load_frozen_file(snap)

    def test_wrong_kind(self, store, oracle):
        store.save_oracle("team", oracle)
        path = store.root / "snapshots" / "team.oracle.snap"
        with pytest.raises(
            StorageError,
            match="holds a distance-oracle snapshot, not a frozen-graph",
        ):
            load_frozen_file(path)

    def test_checksum_mismatch(self, snap):
        raw = bytearray(snap.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload bit
        snap.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="checksum mismatch"):
            load_frozen_file(snap)

    def test_source_version_skew(self, store, fig1, frozen, snap):
        with pytest.raises(StorageError, match="stale snapshot"):
            load_frozen_file(snap, expected_version=fig1.version + 1)
        with pytest.raises(
            StorageError,
            match=rf"taken at graph version {frozen.source_version}",
        ):
            store.load_snapshot("team", expected_version=fig1.version + 1)

    def test_metadata_past_end_of_file(self, snap):
        _patch_header(snap, meta_length=10**9)
        with pytest.raises(StorageError, match="metadata runs past end"):
            load_frozen_file(snap)
        with pytest.raises(StorageError, match="metadata runs past end"):
            snapshot_file_info(snap)

    def test_section_past_end_of_file(self, tmp_path):
        # A checksum-valid file whose section table promises more payload
        # than the file holds.
        path = tmp_path / "lying.frozen.snap"
        meta = json.dumps({"sections": [["out_offsets", 1 << 20]]}).encode()
        header = _HEADER.pack(
            SNAPSHOT_MAGIC, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_KIND_FROZEN,
            0, 0, len(meta), zlib.crc32(meta),
        )
        path.write_bytes(header + meta)
        with pytest.raises(
            StorageError, match="section 'out_offsets' runs past end"
        ):
            from repro.engine.storage import load_snapshot_file

            load_snapshot_file(path, SNAPSHOT_KIND_FROZEN)

    def test_info_corrupt_metadata(self, tmp_path):
        path = tmp_path / "bad-meta.frozen.snap"
        meta = b"{]{]"
        header = _HEADER.pack(
            SNAPSHOT_MAGIC, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_KIND_FROZEN,
            0, 0, len(meta), zlib.crc32(meta),
        )
        path.write_bytes(header + meta)
        with pytest.raises(StorageError, match="corrupt snapshot metadata"):
            snapshot_file_info(path)

    def test_unserializable_metadata_rejected_at_write(self, tmp_path):
        with pytest.raises(StorageError, match="not JSON-serializable"):
            write_snapshot_file(
                tmp_path / "x.snap", SNAPSHOT_KIND_FROZEN, 0, {"bad": {1, 2}}, []
            )

    def test_non_json_node_id_rejected(self, tmp_path):
        graph = Graph(name="bools")
        graph.add_node(True)
        with pytest.raises(StorageError, match="node id True is not JSON"):
            write_frozen_file(tmp_path / "x.snap", FrozenGraph.freeze(graph))

    def test_non_json_attribute_value_rejected(self, tmp_path):
        graph = Graph(name="blobs")
        graph.add_node("a", blob=b"\x00\x01")
        with pytest.raises(StorageError, match="does not survive a JSON round"):
            write_frozen_file(tmp_path / "x.snap", FrozenGraph.freeze(graph))

    def test_atomic_resave_never_disturbs_live_mapping(
        self, store, fig1, fig1_with_e1, snap
    ):
        good = store.load_snapshot("team", expected_version=fig1.version)
        # Saving a newer snapshot under the same name replaces the inode
        # (temp file + os.replace); the live mapping keeps the old pages.
        store.save_snapshot("team", FrozenGraph.freeze(fig1_with_e1))
        assert good.to_graph() == fig1
        assert store.load_snapshot("team").to_graph() == fig1_with_e1


# ----------------------------------------------------------------------
# catalogue CRUD
# ----------------------------------------------------------------------

class TestCatalogue:
    def test_snapshot_crud(self, store, frozen):
        assert not store.has_snapshot("team")
        assert store.list_snapshots() == []
        path = store.save_snapshot("team", frozen)
        assert path.name == "team.frozen.snap"
        assert store.has_snapshot("team")
        assert store.list_snapshots() == ["team"]
        store.delete_snapshot("team")
        assert store.list_snapshots() == []
        with pytest.raises(StorageError, match="no stored snapshot"):
            store.delete_snapshot("team")

    def test_oracle_crud(self, store, oracle):
        assert not store.has_oracle("team")
        store.save_oracle("team", oracle)
        assert store.has_oracle("team")
        assert store.list_oracles() == ["team"]
        # Frozen and oracle namespaces are distinct.
        assert store.list_snapshots() == []
        store.delete_oracle("team")
        assert store.list_oracles() == []
        with pytest.raises(StorageError, match="no stored oracle"):
            store.delete_oracle("team")

    def test_snapshot_info(self, store, fig1, frozen, oracle):
        store.save_snapshot("team", frozen)
        store.save_oracle("team", oracle)
        info = store.snapshot_info("team")
        assert info["kind"] == "frozen-graph"
        assert info["source_version"] == fig1.version
        assert info["name"] == fig1.name
        assert len(info["checksum"]) == 8
        section_names = [name for name, _length in info["sections"]]
        assert section_names[:4] == [
            "out_offsets", "out_targets", "in_offsets", "in_targets"
        ]
        # fig1 attributes ride as packed column sections.
        assert all(name.startswith("col") for name in section_names[4:])
        assert section_names[4:]  # fig1 has attributes
        assert info["file_bytes"] == (
            store.root / "snapshots" / "team.frozen.snap"
        ).stat().st_size
        oracle_info = store.snapshot_info("team", kind="oracle")
        assert oracle_info["kind"] == "distance-oracle"
        assert len(oracle_info["sections"]) == 10

    def test_snapshot_info_bad_kind(self, store):
        with pytest.raises(StorageError, match="unknown snapshot kind 'zip'"):
            store.snapshot_info("team", kind="zip")
        with pytest.raises(StorageError, match="no stored frozen snapshot"):
            store.snapshot_info("team")

    def test_invalid_names_rejected(self, store, frozen):
        with pytest.raises(StorageError, match="invalid store name"):
            store.save_snapshot("../evil", frozen)
        with pytest.raises(StorageError, match="invalid store name"):
            store.load_oracle("a/b")


# ----------------------------------------------------------------------
# cache fault-in
# ----------------------------------------------------------------------

class TestSnapshotFaultIn:
    def test_no_store_is_a_plain_miss(self, fig1):
        cache = SnapshotCache(capacity=2)
        assert cache.get("team", fig1.version) is None
        assert cache.stats()["fault_ins"] == 0
        assert cache.stats()["fault_in_errors"] == 0

    def test_miss_faults_in_from_disk(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        cache = SnapshotCache(capacity=2, store=store)
        loaded = cache.get("team", fig1.version)
        assert loaded is not None
        assert loaded.matches(fig1)
        stats = cache.stats()
        assert stats["fault_ins"] == 1
        assert stats["builds"] == 0
        assert stats["misses"] == 1
        # Second read is a warm in-memory hit, not another mmap.
        assert cache.get("team", fig1.version) is loaded
        assert cache.stats()["hits"] == 1

    def test_absent_file_is_not_an_error(self, store, fig1):
        cache = SnapshotCache(capacity=2, store=store)
        assert cache.get("team", fig1.version) is None
        assert cache.stats()["fault_in_errors"] == 0

    def test_stale_file_falls_back_to_rebuild(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        cache = SnapshotCache(capacity=2, store=store)
        assert cache.get("team", fig1.version + 1) is None
        assert cache.stats()["fault_in_errors"] == 1
        assert cache.stats()["fault_ins"] == 0

    def test_corrupt_file_falls_back_to_rebuild(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        path = store.root / "snapshots" / "team.frozen.snap"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        cache = SnapshotCache(capacity=2, store=store)
        assert cache.get("team", fig1.version) is None
        assert cache.stats()["fault_in_errors"] == 1

    def test_put_counts_builds_not_fault_ins(self, fig1, frozen):
        cache = SnapshotCache(capacity=2)
        cache.put("team", frozen, fig1.version)
        assert cache.stats()["builds"] == 1
        assert cache.stats()["fault_ins"] == 0


class TestOracleFaultIn:
    def test_miss_faults_in_from_disk(self, store, fig1, oracle):
        store.save_oracle("team", oracle)
        cache = OracleCache(capacity=2, store=store)
        loaded = cache.get("team", fig1.version)
        assert loaded is not None
        assert loaded.cap == oracle.cap
        assert cache.stats()["fault_ins"] == 1
        assert cache.stats()["builds"] == 0

    def test_cap_mismatch_skips_the_file(self, store, fig1, oracle):
        store.save_oracle("team", oracle)
        cache = OracleCache(capacity=2, store=store)
        assert cache.get("team", fig1.version, config={"cap": 9}) is None
        stats = cache.stats()
        # A cap mismatch is a config decision, not a corrupt file.
        assert stats["fault_ins"] == 0
        assert stats["fault_in_errors"] == 0

    def test_matching_cap_faults_in(self, store, fig1, oracle):
        store.save_oracle("team", oracle)
        cache = OracleCache(capacity=2, store=store)
        loaded = cache.get("team", fig1.version, config={"cap": oracle.cap})
        assert loaded is not None
        assert cache.stats()["fault_ins"] == 1

    def test_stale_file_falls_back_to_rebuild(self, store, fig1, oracle):
        store.save_oracle("team", oracle)
        cache = OracleCache(capacity=2, store=store)
        assert cache.get("team", fig1.version + 1) is None
        assert cache.stats()["fault_in_errors"] == 1


# ----------------------------------------------------------------------
# engine persistence API
# ----------------------------------------------------------------------

class TestEnginePersistSnapshot:
    def test_requires_a_store(self, fig1):
        engine = QueryEngine()
        engine.register_graph("team", fig1)
        with pytest.raises(EvaluationError, match="no file store"):
            engine.persist_snapshot("team")

    def test_persists_snapshot_and_oracle(self, store, fig1):
        engine = QueryEngine(store=store)
        engine.register_graph("team", fig1)
        paths = engine.persist_snapshot("team")
        assert set(paths) == {"snapshot"}
        assert store.has_snapshot("team")
        with pytest.raises(EvaluationError, match="oracle not enabled"):
            engine.persist_snapshot("team", include_oracle=True)
        engine.enable_oracle("team", cap=4)
        paths = engine.persist_snapshot("team", include_oracle=True)
        assert set(paths) == {"snapshot", "oracle"}
        assert store.has_oracle("team")
        loaded = store.load_oracle("team", expected_version=fig1.version)
        assert loaded.cap == 4


# ----------------------------------------------------------------------
# pickling and spawn-pool shipping
# ----------------------------------------------------------------------

class TestPickleMmapBacked:
    def test_frozen_pickle_materializes_views(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        loaded = store.load_snapshot("team")
        clone = pickle.loads(pickle.dumps(loaded))
        assert clone.path is None  # the copy owns its buffers
        assert clone.to_graph() == fig1
        assert list(clone.out_targets) == list(loaded.out_targets)

    def test_oracle_pickle_materializes_views(self, store, fig1, oracle):
        store.save_oracle("team", oracle)
        loaded = store.load_oracle("team")
        clone = pickle.loads(pickle.dumps(loaded))
        assert clone.path is None
        assert clone.reach_out == oracle.reach_out
        n = len(oracle.reach_out)
        for source in range(n):
            for target in range(n):
                if source != target:
                    assert clone.distance(source, target) == oracle.distance(
                        source, target
                    )

    def test_without_attrs_keeps_backing_path(self, store, frozen):
        store.save_snapshot("team", frozen)
        loaded = store.load_snapshot("team")
        assert loaded.without_attrs().path == loaded.path


class TestSpawnShipping:
    """Store-loaded snapshots ship as file paths into spawn workers."""

    @pytest.fixture
    def served(self, store, fig1, frozen, oracle):
        store.save_snapshot("team", frozen)
        store.save_oracle("team", oracle)
        return (
            store.load_snapshot("team", expected_version=fig1.version),
            store.load_oracle("team", expected_version=fig1.version),
        )

    def test_shared_snapshot_match(self, fig1, fig1_query, served):
        loaded_frozen, loaded_oracle = served
        expected = match_bounded(fig1, fig1_query).relation
        with ParallelExecutor(workers=2, start_method="spawn") as executor:
            result = executor.match(
                fig1, fig1_query, frozen=loaded_frozen, oracle=loaded_oracle
            )
        assert result.stats["parallel"]["shipping"] == "shared-graph"
        assert result.relation == expected

    def test_guarded_match(self, fig1, fig1_query, served):
        loaded_frozen, loaded_oracle = served
        expected = match_bounded(fig1, fig1_query).relation
        budget = QueryBudget(node_visits=1_000_000)
        with ParallelExecutor(workers=2, start_method="spawn") as executor:
            result = executor.match(
                fig1, fig1_query,
                frozen=loaded_frozen, oracle=loaded_oracle, budget=budget,
            )
        assert result.relation == expected
        assert result.stats["partial"] is False

    def test_match_many(self, fig1, fig1_query, served):
        from repro.graph.index import predicate_key

        loaded_frozen, loaded_oracle = served
        candidates = simulation_candidates(fig1, fig1_query)
        keys = {
            u: predicate_key(fig1_query.predicate(u)) for u in fig1_query.nodes()
        }
        table = {keys[u]: candidates[u] for u in fig1_query.nodes()}
        tasks = [(fig1_query, keys)] * 3
        expected = match_bounded(fig1, fig1_query).relation
        with ParallelExecutor(workers=2, start_method="spawn") as executor:
            outcomes = executor.match_many(
                fig1, tasks, table, frozen=loaded_frozen, oracle=loaded_oracle
            )
        assert [relation for relation, _stats in outcomes] == [expected] * 3

    def test_in_process_snapshot_still_ships(self, fig1, fig1_query, frozen):
        # No backing file: the snapshot pickles as attribute-less buffers.
        assert frozen.path is None
        expected = match_bounded(fig1, fig1_query).relation
        with ParallelExecutor(workers=2, start_method="spawn") as executor:
            result = executor.match(fig1, fig1_query, frozen=frozen)
        assert result.relation == expected

    def test_shipment_round_trip(self, frozen, served):
        # The worker-side inverse maps shipped paths back to live objects.
        from repro.engine.parallel import _resolve_shipped, _shipment

        loaded_frozen, loaded_oracle = served
        shipped = _shipment(loaded_frozen, loaded_oracle)
        assert shipped == (loaded_frozen.path, loaded_oracle.path)
        back_frozen, back_oracle = _resolve_shipped(*shipped)
        assert back_frozen.labels == loaded_frozen.labels
        assert back_frozen.out_targets.tobytes() == loaded_frozen.out_targets.tobytes()
        assert back_oracle.cap == loaded_oracle.cap
        assert back_oracle.compatible_with(back_frozen)

        # In-process objects have no path: they ship as pickled buffers
        # (attribute-less for the frozen graph) and resolve to themselves.
        twin, none_oracle = _shipment(frozen, None)
        assert twin.labels == frozen.labels and none_oracle is None
        assert _resolve_shipped(twin, None) == (twin, None)


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------

class TestAtomicWrites:
    def test_failed_write_preserves_previous_file(self, tmp_path):
        path = tmp_path / "data.bin"
        atomic_write_bytes(path, [b"good bytes"])

        def exploding_chunks():
            yield b"partial "
            raise RuntimeError("disk died mid-write")

        with pytest.raises(RuntimeError, match="disk died"):
            atomic_write_bytes(path, exploding_chunks())
        assert path.read_bytes() == b"good bytes"
        # The orphaned temp file is cleaned up, not littered.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["data.bin"]

    def test_snapshot_save_failure_keeps_old_snapshot(self, store, fig1, frozen):
        store.save_snapshot("team", frozen)
        good = (store.root / "snapshots" / "team.frozen.snap").read_bytes()
        bad_graph = Graph(name=fig1.name)
        bad_graph.add_node("a", blob=b"\x00")
        with pytest.raises(StorageError, match="JSON"):
            store.save_snapshot("team", FrozenGraph.freeze(bad_graph))
        assert (store.root / "snapshots" / "team.frozen.snap").read_bytes() == good

    def test_no_temp_litter_after_saves(self, store, fig1, frozen, oracle):
        store.save_snapshot("team", frozen)
        store.save_oracle("team", oracle)
        store.save_graph("team", fig1)
        names = [p.name for p in (store.root / "snapshots").iterdir()]
        assert sorted(names) == ["team.frozen.snap", "team.oracle.snap"]
        assert [p.name for p in (store.root / "graphs").iterdir()] == ["team.json"]
