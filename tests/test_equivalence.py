"""Unit tests for equivalence partitions (bisimulation & simulation)."""

import pytest

from repro.compression.equivalence import (
    bisimulation_partition,
    is_stable_partition,
    mutually_similar,
    simulation_equivalence,
    simulation_preorder,
)
from repro.graph.digraph import Graph

from tests.conftest import make_labelled_graph


def label_of_factory(graph: Graph):
    return lambda node: graph.get(node, "label")


class TestBisimulation:
    def test_same_label_leaves_merge(self):
        g = make_labelled_graph([], {"x": "A", "y": "A", "z": "B"})
        partition = bisimulation_partition(g, label_of_factory(g))
        assert partition["x"] == partition["y"]
        assert partition["x"] != partition["z"]

    def test_different_successors_split(self):
        g = make_labelled_graph(
            [("x", "c"), ("y", "d")], {"x": "A", "y": "A", "c": "C", "d": "D"}
        )
        partition = bisimulation_partition(g, label_of_factory(g))
        assert partition["x"] != partition["y"]

    def test_same_successor_class_merges(self):
        g = make_labelled_graph(
            [("x", "c1"), ("y", "c2")], {"x": "A", "y": "A", "c1": "C", "c2": "C"}
        )
        partition = bisimulation_partition(g, label_of_factory(g))
        assert partition["x"] == partition["y"]

    def test_chain_depth_distinguishes(self):
        # a1 -> a2 -> a3 (all label A): each depth is its own class.
        g = make_labelled_graph([("a1", "a2"), ("a2", "a3")],
                                {"a1": "A", "a2": "A", "a3": "A"})
        partition = bisimulation_partition(g, label_of_factory(g))
        assert len(set(partition.values())) == 3

    def test_cycle_nodes_can_merge(self):
        g = make_labelled_graph(
            [("a1", "a2"), ("a2", "a1")], {"a1": "A", "a2": "A"}
        )
        partition = bisimulation_partition(g, label_of_factory(g))
        assert partition["a1"] == partition["a2"]

    def test_result_is_stable(self):
        from repro.graph.generators import random_digraph

        g = random_digraph(40, 100, num_labels=3, seed=1)
        label_of = lambda v: g.get(v, "label")
        partition = bisimulation_partition(g, label_of)
        assert is_stable_partition(g, label_of, partition)

    def test_contiguous_class_indices(self):
        g = make_labelled_graph([], {"x": "A", "y": "B", "z": "A"})
        partition = bisimulation_partition(g, label_of_factory(g))
        assert set(partition.values()) == set(range(len(set(partition.values()))))


class TestSimulationPreorder:
    def test_leaf_simulated_by_everything_same_label(self):
        g = make_labelled_graph([("y", "c")], {"x": "A", "y": "A", "c": "C"})
        sim = simulation_preorder(g, label_of_factory(g))
        assert sim["x"] == {"x", "y"}  # y (with moves) simulates leaf x
        assert sim["y"] == {"y"}       # x cannot mimic y's move

    def test_reflexive(self):
        g = make_labelled_graph([("x", "y"), ("y", "x")], {"x": "A", "y": "A"})
        sim = simulation_preorder(g, label_of_factory(g))
        for node in g.nodes():
            assert node in sim[node]

    def test_labels_never_mix(self):
        g = make_labelled_graph([], {"x": "A", "y": "B"})
        sim = simulation_preorder(g, label_of_factory(g))
        assert y_not_in(sim, "x", "y")

    def test_deep_mimicking(self):
        # p: A->B(leaf).  q: A->B->C.  q simulates p? p's move to leaf B is
        # mimicked by q's move to B-with-child (leaf is simulated by anything
        # same-label).  p does NOT simulate q.
        g = make_labelled_graph(
            [("p", "bp"), ("q", "bq"), ("bq", "c")],
            {"p": "A", "q": "A", "bp": "B", "bq": "B", "c": "C"},
        )
        sim = simulation_preorder(g, label_of_factory(g))
        assert "q" in sim["p"]
        assert "p" not in sim["q"]


def y_not_in(sim, x, y):
    return y not in sim[x] and x not in sim[y]


class TestSimulationEquivalence:
    def test_coarser_than_bisimulation(self):
        # The classic case: x -> m; y -> m and y -> n (n a leaf B).
        # Simulation equivalence merges x,y; bisimulation does not.
        g = make_labelled_graph(
            [("x", "m"), ("y", "m"), ("y", "n"), ("m", "c")],
            {"x": "A", "y": "A", "m": "B", "n": "B", "c": "C"},
        )
        label_of = label_of_factory(g)
        sim_partition = simulation_equivalence(g, label_of)
        bis_partition = bisimulation_partition(g, label_of)
        assert sim_partition["x"] == sim_partition["y"]
        assert bis_partition["x"] != bis_partition["y"]

    def test_never_coarser_than_labels(self):
        g = make_labelled_graph([], {"x": "A", "y": "B"})
        partition = simulation_equivalence(g, label_of_factory(g))
        assert partition["x"] != partition["y"]

    def test_refines_into_bisimulation_classes(self):
        """Every bisimulation class is contained in a simulation class."""
        from repro.graph.generators import random_digraph

        g = random_digraph(30, 70, num_labels=2, seed=3)
        label_of = lambda v: g.get(v, "label")
        sim_partition = simulation_equivalence(g, label_of)
        bis_partition = bisimulation_partition(g, label_of)
        by_bis: dict[int, set[int]] = {}
        for node in g.nodes():
            by_bis.setdefault(bis_partition[node], set()).add(sim_partition[node])
        assert all(len(classes) == 1 for classes in by_bis.values())

    def test_mutually_similar_helper(self):
        g = make_labelled_graph(
            [("x", "c"), ("y", "c")], {"x": "A", "y": "A", "c": "C"}
        )
        label_of = label_of_factory(g)
        assert mutually_similar(g, label_of, "x", "y")
        assert not mutually_similar(g, label_of, "x", "c")


class TestStablePartitionChecker:
    def test_accepts_stable(self):
        g = make_labelled_graph([], {"x": "A", "y": "A"})
        assert is_stable_partition(g, label_of_factory(g), {"x": 0, "y": 0})

    def test_rejects_label_mixing(self):
        g = make_labelled_graph([], {"x": "A", "y": "B"})
        assert not is_stable_partition(g, label_of_factory(g), {"x": 0, "y": 0})

    def test_rejects_signature_mixing(self):
        g = make_labelled_graph(
            [("x", "c")], {"x": "A", "y": "A", "c": "C"}
        )
        assert not is_stable_partition(
            g, label_of_factory(g), {"x": 0, "y": 0, "c": 1}
        )
