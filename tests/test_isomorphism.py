"""Unit tests for the subgraph-isomorphism baseline."""

import pytest

from repro.graph.digraph import Graph
from repro.matching.isomorphism import (
    count_isomorphisms,
    find_isomorphisms,
    has_isomorphism,
)
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern

from tests.conftest import make_labelled_graph


def edge_query() -> Pattern:
    return (
        PatternBuilder()
        .node("A", 'label == "A"')
        .node("B", 'label == "B"')
        .edge("A", "B", 1)
        .build()
    )


class TestBasics:
    def test_single_embedding(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        assert list(find_isomorphisms(g, edge_query())) == [{"A": "a", "B": "b"}]

    def test_no_embedding_without_edge(self):
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        assert not has_isomorphism(g, edge_query())

    def test_multiple_embeddings_counted(self):
        g = make_labelled_graph(
            [("a", "b1"), ("a", "b2")], {"a": "A", "b1": "B", "b2": "B"}
        )
        assert count_isomorphisms(g, edge_query()) == 2

    def test_limit_caps_enumeration(self):
        g = make_labelled_graph(
            [("a", "b1"), ("a", "b2"), ("a", "b3")],
            {"a": "A", "b1": "B", "b2": "B", "b3": "B"},
        )
        assert count_isomorphisms(g, edge_query(), limit=2) == 2

    def test_injectivity_enforced(self):
        # Pattern wants two distinct B nodes; graph has only one.
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B1", 'label == "B"')
            .node("B2", 'label == "B"')
            .edge("A", "B1", 1)
            .edge("A", "B2", 1)
            .build()
        )
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        assert not has_isomorphism(g, q)
        g2 = make_labelled_graph(
            [("a", "b1"), ("a", "b2")], {"a": "A", "b1": "B", "b2": "B"}
        )
        assert count_isomorphisms(g2, q) == 2  # two ways to assign B1/B2

    def test_edges_checked_in_both_directions(self):
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .edge("A", "B", 1)
            .edge("B", "A", 1)
            .build()
        )
        one_way = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        assert not has_isomorphism(one_way, q)
        both_ways = make_labelled_graph(
            [("a", "b"), ("b", "a")], {"a": "A", "b": "B"}
        )
        assert has_isomorphism(both_ways, q)

    def test_predicates_respected(self):
        g = Graph()
        g.add_node("senior", label="A", exp=9)
        g.add_node("junior", label="A", exp=1)
        g.add_node("b", label="B", exp=1)
        g.add_edges([("senior", "b"), ("junior", "b")])
        q = (
            PatternBuilder()
            .node("A", 'label == "A", exp >= 5')
            .node("B", 'label == "B"')
            .edge("A", "B", 1)
            .build()
        )
        assert [m["A"] for m in find_isomorphisms(g, q)] == ["senior"]

    def test_triangle_pattern_in_triangle_graph(self, cycle3):
        q = (
            PatternBuilder()
            .node("X", 'label == "X"')
            .node("Y", 'label == "Y"')
            .node("Z", 'label == "Z"')
            .edge("X", "Y", 1)
            .edge("Y", "Z", 1)
            .edge("Z", "X", 1)
            .build()
        )
        assert count_isomorphisms(cycle3, q) == 1

    def test_bounds_are_ignored_by_design(self):
        # Isomorphism treats every pattern edge as a direct-edge requirement.
        g = make_labelled_graph([("a", "m"), ("m", "b")], {"a": "A", "m": "M", "b": "B"})
        q = (
            PatternBuilder()
            .node("A", 'label == "A"')
            .node("B", 'label == "B"')
            .edge("A", "B", 5)
            .build()
        )
        assert not has_isomorphism(g, q)

    def test_empty_candidates_short_circuit(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        q = (
            PatternBuilder()
            .node("Z", 'label == "Z"')
            .build()
        )
        assert not has_isomorphism(g, q)

    def test_single_node_pattern(self):
        g = make_labelled_graph([], {"a": "A", "a2": "A"})
        q = PatternBuilder().node("A", 'label == "A"').build()
        assert count_isomorphisms(g, q) == 2
