"""Unit tests for the search-condition predicate DSL."""

import pytest

from repro.errors import PredicateError
from repro.pattern.predicates import (
    AlwaysTrue,
    And,
    Cmp,
    In,
    Not,
    Or,
    format_predicate,
    parse_condition,
    parse_conjunction,
    predicate_from_dict,
)


class TestCmp:
    def test_equality(self):
        assert Cmp("field", "==", "SA").evaluate({"field": "SA"})
        assert not Cmp("field", "==", "SA").evaluate({"field": "SD"})

    def test_inequality(self):
        assert Cmp("field", "!=", "SA").evaluate({"field": "SD"})

    @pytest.mark.parametrize(
        "op,value,attr_value,expected",
        [
            (">=", 5, 5, True),
            (">=", 5, 4, False),
            ("<=", 5, 5, True),
            ("<=", 5, 6, False),
            (">", 5, 6, True),
            (">", 5, 5, False),
            ("<", 5, 4, True),
            ("<", 5, 5, False),
        ],
    )
    def test_comparisons(self, op, value, attr_value, expected):
        assert Cmp("x", op, value).evaluate({"x": attr_value}) is expected

    def test_missing_attribute_is_false(self):
        assert not Cmp("x", ">=", 5).evaluate({})

    def test_type_mismatch_is_false_not_error(self):
        assert not Cmp("x", ">=", 5).evaluate({"x": "seven"})

    def test_unknown_operator_raises(self):
        with pytest.raises(PredicateError, match="unknown operator"):
            Cmp("x", "~~", 5)

    def test_empty_attribute_name_raises(self):
        with pytest.raises(PredicateError):
            Cmp("", "==", 5)

    def test_attrs_tracking(self):
        assert Cmp("experience", ">=", 5).attrs == frozenset({"experience"})

    def test_equality_and_hash(self):
        assert Cmp("x", "==", 1) == Cmp("x", "==", 1)
        assert hash(Cmp("x", "==", 1)) == hash(Cmp("x", "==", 1))
        assert Cmp("x", "==", 1) != Cmp("x", "==", 2)

    def test_key_distinguishes_value_types(self):
        # 1 == True in Python; canonical keys must still differ.
        assert Cmp("x", "==", 1).key() != Cmp("x", "==", True).key()


class TestIn:
    def test_membership(self):
        pred = In("field", ["SA", "PM"])
        assert pred.evaluate({"field": "PM"})
        assert not pred.evaluate({"field": "SD"})
        assert not pred.evaluate({})

    def test_empty_choices_raise(self):
        with pytest.raises(PredicateError):
            In("field", [])

    def test_attrs(self):
        assert In("field", ["SA"]).attrs == frozenset({"field"})


class TestCombinators:
    def test_and(self):
        pred = And(Cmp("f", "==", "SA"), Cmp("e", ">=", 5))
        assert pred.evaluate({"f": "SA", "e": 7})
        assert not pred.evaluate({"f": "SA", "e": 3})

    def test_or(self):
        pred = Or(Cmp("f", "==", "SA"), Cmp("f", "==", "PM"))
        assert pred.evaluate({"f": "PM"})
        assert not pred.evaluate({"f": "SD"})

    def test_not(self):
        pred = Not(Cmp("f", "==", "SA"))
        assert pred.evaluate({"f": "SD"})
        assert not pred.evaluate({"f": "SA"})

    def test_operator_sugar(self):
        pred = (Cmp("f", "==", "SA") & Cmp("e", ">=", 5)) | ~Cmp("f", "==", "GD")
        assert pred.evaluate({"f": "SA", "e": 9})
        assert pred.evaluate({"f": "SD"})

    def test_nested_flattening(self):
        pred = And(And(Cmp("a", "==", 1), Cmp("b", "==", 2)), Cmp("c", "==", 3))
        assert len(pred.parts) == 3

    def test_attrs_union(self):
        pred = And(Cmp("a", "==", 1), Or(Cmp("b", "==", 2), Cmp("c", "==", 3)))
        assert pred.attrs == frozenset({"a", "b", "c"})

    def test_and_key_is_order_insensitive(self):
        first = And(Cmp("a", "==", 1), Cmp("b", "==", 2))
        second = And(Cmp("b", "==", 2), Cmp("a", "==", 1))
        assert first == second

    def test_combinator_rejects_non_predicates(self):
        with pytest.raises(PredicateError):
            And("not a predicate")  # type: ignore[arg-type]

    def test_empty_combinator_raises(self):
        with pytest.raises(PredicateError):
            Or()


class TestAlwaysTrue:
    def test_everything_matches(self):
        assert AlwaysTrue().evaluate({})
        assert AlwaysTrue().evaluate({"anything": 1})

    def test_no_attrs(self):
        assert AlwaysTrue().attrs == frozenset()


class TestParsing:
    @pytest.mark.parametrize(
        "text,attrs,expected",
        [
            ("experience >= 5", {"experience": 7}, True),
            ("experience >= 5", {"experience": 3}, False),
            ('field == "SA"', {"field": "SA"}, True),
            ("field == 'SA'", {"field": "SA"}, True),
            ("field = SA", {"field": "SA"}, True),
            ("x != 3", {"x": 4}, True),
            ("x < 3.5", {"x": 3.0}, True),
            ("flag == true", {"flag": True}, True),
            ("flag == false", {"flag": False}, True),
            ('field in ["SA", "PM"]', {"field": "PM"}, True),
            ("field in [SA, PM]", {"field": "SD"}, False),
        ],
    )
    def test_parse_condition(self, text, attrs, expected):
        assert parse_condition(text).evaluate(attrs) is expected

    def test_parse_true_keywords(self):
        for text in ("true", "*", "any"):
            assert isinstance(parse_condition(text), AlwaysTrue)

    def test_parse_conjunction(self):
        pred = parse_conjunction('field == "SA", experience >= 5')
        assert pred.evaluate({"field": "SA", "experience": 7})
        assert not pred.evaluate({"field": "SA", "experience": 1})

    def test_parse_conjunction_single_clause(self):
        assert isinstance(parse_conjunction("x >= 1"), Cmp)

    def test_parse_conjunction_empty_is_always_true(self):
        assert isinstance(parse_conjunction("  "), AlwaysTrue)

    def test_comma_inside_list_is_not_a_separator(self):
        pred = parse_conjunction('field in ["SA", "PM"], experience >= 5')
        assert isinstance(pred, And)
        assert pred.evaluate({"field": "SA", "experience": 6})

    def test_comma_inside_quotes_is_not_a_separator(self):
        pred = parse_conjunction('name == "Smith, John"')
        assert pred.evaluate({"name": "Smith, John"})

    def test_unparsable_condition_raises(self):
        with pytest.raises(PredicateError):
            parse_condition("experience")

    def test_empty_condition_raises(self):
        with pytest.raises(PredicateError):
            parse_condition("")

    def test_bad_list_raises(self):
        with pytest.raises(PredicateError):
            parse_condition("field in SA, PM")

    def test_empty_list_raises(self):
        with pytest.raises(PredicateError):
            parse_condition("field in []")

    def test_numeric_value_parsing(self):
        pred = parse_condition("x == 7")
        assert pred.evaluate({"x": 7})
        assert not pred.evaluate({"x": "7"})

    def test_bare_word_is_string(self):
        assert parse_condition("field == SA").evaluate({"field": "SA"})


class TestRoundTrips:
    @pytest.mark.parametrize(
        "pred",
        [
            AlwaysTrue(),
            Cmp("experience", ">=", 5),
            Cmp("field", "==", "SA"),
            In("field", ["SA", "PM"]),
            And(Cmp("a", "==", 1), Cmp("b", ">=", 2)),
            Or(Cmp("a", "==", 1), Not(Cmp("b", "<", 2))),
        ],
    )
    def test_dict_round_trip(self, pred):
        assert predicate_from_dict(pred.to_dict()) == pred

    @pytest.mark.parametrize(
        "pred",
        [
            Cmp("experience", ">=", 5),
            And(Cmp("field", "==", "SA"), Cmp("experience", ">=", 5)),
            In("field", ["SA", "PM"]),
        ],
    )
    def test_text_round_trip(self, pred):
        assert parse_conjunction(format_predicate(pred)) == pred

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(PredicateError):
            predicate_from_dict({"kind": "martian"})
        with pytest.raises(PredicateError):
            predicate_from_dict("nope")  # type: ignore[arg-type]

    def test_format_or_and_not(self):
        pred = Or(Cmp("a", "==", 1), Not(Cmp("b", "==", 2)))
        text = format_predicate(pred)
        assert "or" in text
        assert "not" in text
