"""Property-based tests: compression is query-preserving, statically and
under maintenance.

The SIGMOD'12 contract: for ANY graph, ANY compression label covering the
pattern's attributes, and ANY (bounded) simulation pattern,
``decompress(M(Q, Gc)) == M(Q, G)`` — and the maintained partition keeps
that property through arbitrary update sequences.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compression.compress import compress
from repro.compression.decompress import decompress_relation
from repro.compression.equivalence import is_stable_partition
from repro.compression.maintain import MaintainedCompression
from repro.graph.digraph import Graph
from repro.incremental.updates import EdgeDeletion, EdgeInsertion
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern

LABELS = ("A", "B")


@st.composite
def graph_and_pattern(draw, max_nodes=9, max_edges=18):
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=num_nodes, max_size=num_nodes)
    )
    graph = Graph()
    for index, label in enumerate(labels):
        graph.add_node(index, label=label)
    possible = [(s, t) for s in range(num_nodes) for t in range(num_nodes) if s != t]
    if possible:
        graph.add_edges(
            draw(st.lists(st.sampled_from(possible), max_size=max_edges, unique=True))
        )
    pattern = Pattern()
    names = [f"P{i}" for i in range(draw(st.integers(min_value=1, max_value=3)))]
    for name in names:
        pattern.add_node(name, f'label == "{draw(st.sampled_from(LABELS))}"')
    for source, target in draw(
        st.lists(st.sampled_from([(a, b) for a in names for b in names]),
                 max_size=3, unique=True)
    ):
        pattern.add_edge(source, target, draw(st.sampled_from([1, 2, 3, None])))
    return graph, pattern


@given(graph_and_pattern(), st.sampled_from(["bisimulation", "simulation"]))
@settings(max_examples=100, deadline=None)
def test_compression_preserves_bounded_matches(data, method):
    graph, pattern = data
    compressed = compress(graph, attrs=("label",), method=method)
    direct = match_bounded(graph, pattern).relation
    on_quotient = match_bounded(compressed.quotient, pattern).relation
    assert decompress_relation(on_quotient, compressed) == direct


@given(graph_and_pattern(), st.sampled_from(["bisimulation", "simulation"]))
@settings(max_examples=60, deadline=None)
def test_compression_preserves_plain_simulation(data, method):
    graph, pattern = data
    unit = Pattern()
    for node in pattern.nodes():
        unit.add_node(node, pattern.predicate(node))
    for source, target, _bound in pattern.edges():
        unit.add_edge(source, target, 1)
    compressed = compress(graph, attrs=("label",), method=method)
    direct = match_simulation(graph, unit).relation
    on_quotient = match_simulation(compressed.quotient, unit).relation
    assert decompress_relation(on_quotient, compressed) == direct


@given(graph_and_pattern())
@settings(max_examples=50, deadline=None)
def test_quotient_never_larger(data):
    graph, _pattern = data
    compressed = compress(graph, attrs=("label",))
    assert compressed.quotient.num_nodes <= graph.num_nodes
    assert compressed.quotient.num_edges <= graph.num_edges


@given(graph_and_pattern())
@settings(max_examples=50, deadline=None)
def test_simulation_method_at_least_as_coarse(data):
    graph, _pattern = data
    bis = compress(graph, attrs=("label",), method="bisimulation")
    sim = compress(graph, attrs=("label",), method="simulation")
    assert sim.quotient.num_nodes <= bis.quotient.num_nodes


@st.composite
def maintained_scenario(draw, max_nodes=7, max_updates=8):
    graph, pattern = draw(graph_and_pattern(max_nodes=max_nodes))
    if graph.num_nodes < 2:
        return graph, pattern, []
    possible = [
        (s, t)
        for s in graph.nodes()
        for t in graph.nodes()
        if s != t
    ]
    scratch = graph.copy()
    updates = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_updates))):
        existing = list(scratch.edges())
        missing = [pair for pair in possible if not scratch.has_edge(*pair)]
        kinds = ([("delete", e) for e in existing] + [("insert", m) for m in missing])
        if not kinds:
            break
        kind, (source, target) = draw(st.sampled_from(kinds))
        update = (
            EdgeInsertion(source, target)
            if kind == "insert"
            else EdgeDeletion(source, target)
        )
        update.apply(scratch)
        updates.append(update)
    return graph, pattern, updates


@given(maintained_scenario())
@settings(max_examples=80, deadline=None)
def test_maintained_compression_stays_query_preserving(data):
    graph, pattern, updates = data
    maintained = MaintainedCompression(graph, attrs=("label",))
    for update in updates:
        maintained.apply(update)
    compressed = maintained.compressed()
    direct = match_bounded(graph, pattern).relation
    on_quotient = match_bounded(compressed.quotient, pattern).relation
    assert decompress_relation(on_quotient, compressed) == direct


@given(maintained_scenario())
@settings(max_examples=80, deadline=None)
def test_maintained_partition_stays_stable_and_consistent(data):
    graph, _pattern, updates = data
    maintained = MaintainedCompression(graph, attrs=("label",))
    for update in updates:
        maintained.apply(update)
        maintained.check_partition()
    label_of = lambda v: graph.get(v, "label")
    node_class = maintained.compressed().node_to_class
    numeric = {node: int(cid[1:]) for node, cid in node_class.items()}
    assert is_stable_partition(graph, label_of, numeric)
