"""Unit tests for the command-line front end."""

import pytest

from repro.cli import main
from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.graph.io import load_graph, save_graph
from repro.pattern.parser import save_pattern


@pytest.fixture
def graph_file(tmp_path):
    return str(save_graph(paper_graph(), tmp_path / "fig1.json"))


@pytest.fixture
def pattern_file(tmp_path):
    return str(save_pattern(paper_pattern(), tmp_path / "team.pattern"))


class TestGenerate:
    @pytest.mark.parametrize("kind", ["collab", "twitter", "random"])
    def test_generate_kinds(self, tmp_path, capsys, kind):
        out = tmp_path / f"{kind}.json"
        code = main(["generate", "--kind", kind, "--nodes", "40", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert load_graph(out).num_nodes == 40
        assert "wrote" in capsys.readouterr().out

    def test_generate_deterministic(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["generate", "--nodes", "30", "--seed", "5", "--out", str(a)])
        main(["generate", "--nodes", "30", "--seed", "5", "--out", str(b)])
        assert load_graph(a) == load_graph(b)


class TestShow:
    def test_summary(self, graph_file, capsys):
        assert main(["show", "--graph", graph_file]) == 0
        out = capsys.readouterr().out
        assert "9 nodes" in out

    def test_node_card(self, graph_file, capsys):
        assert main(["show", "--graph", graph_file, "--node", "Bob"]) == 0
        assert "experience: 7" in capsys.readouterr().out

    def test_missing_graph_is_error(self, tmp_path, capsys):
        code = main(["show", "--graph", str(tmp_path / "none.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_query_prints_relation(self, graph_file, pattern_file, capsys):
        assert main(["query", "--graph", graph_file, "--pattern", pattern_file]) == 0
        out = capsys.readouterr().out
        assert "SA: Bob, Walt" in out

    def test_query_explain(self, graph_file, pattern_file, capsys):
        main(["query", "--graph", graph_file, "--pattern", pattern_file, "--explain"])
        out = capsys.readouterr().out
        assert "algorithm: bounded-simulation" in out

    def test_query_result_graph(self, graph_file, pattern_file, capsys):
        main(["query", "--graph", graph_file, "--pattern", pattern_file,
              "--result-graph"])
        assert "Bob -[1]-> Dan" in capsys.readouterr().out

    def test_no_match_exits_1(self, tmp_path, graph_file, capsys):
        q = tmp_path / "none.pattern"
        q.write_text('node Z : field == "ZZ"\n')
        assert main(["query", "--graph", graph_file, "--pattern", str(q)]) == 1


class TestTopK:
    def test_topk_table(self, graph_file, pattern_file, capsys):
        assert main(["topk", "--graph", graph_file, "--pattern", pattern_file,
                     "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "Bob" in out
        assert "Walt" not in out

    def test_topk_alternative_metric(self, graph_file, pattern_file, capsys):
        assert main(["topk", "--graph", graph_file, "--pattern", pattern_file,
                     "--metric", "degree"]) == 0
        assert "Bob" in capsys.readouterr().out

    def test_topk_writes_dot(self, graph_file, pattern_file, tmp_path, capsys):
        dot = tmp_path / "top.dot"
        main(["topk", "--graph", graph_file, "--pattern", pattern_file,
              "--dot", str(dot)])
        assert "color=red" in dot.read_text()

    def test_topk_with_workers_matches_sequential(self, graph_file, pattern_file,
                                                  capsys):
        assert main(["topk", "--graph", graph_file, "--pattern", pattern_file,
                     "-k", "2"]) == 0
        sequential = capsys.readouterr().out
        assert main(["topk", "--graph", graph_file, "--pattern", pattern_file,
                     "-k", "2", "--workers", "2"]) == 0
        assert capsys.readouterr().out == sequential

    @pytest.mark.parametrize("metric", ["social-impact", "degree", "closeness",
                                        "harmonic"])
    def test_topk_rejects_nonpositive_k_for_every_metric(self, graph_file,
                                                         pattern_file, capsys,
                                                         metric):
        code = main(["topk", "--graph", graph_file, "--pattern", pattern_file,
                     "-k", "0", "--metric", metric])
        assert code == 2
        assert "k must be a positive integer" in capsys.readouterr().err

    def test_topk_rejects_bad_workers(self, graph_file, pattern_file, capsys):
        code = main(["topk", "--graph", graph_file, "--pattern", pattern_file,
                     "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_topk_no_match_exits_1(self, tmp_path, graph_file, capsys):
        q = tmp_path / "none.pattern"
        q.write_text('node Z* : field == "ZZ"\n')
        code = main(["topk", "--graph", graph_file, "--pattern", str(q)])
        assert code == 1
        assert "no match" in capsys.readouterr().out


class TestUpdate:
    def test_update_applies_and_reports_delta(self, graph_file, pattern_file, capsys):
        code = main([
            "update", "--graph", graph_file, "--insert", "Fred:Eva",
            "--pattern", pattern_file,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ΔM +(SD, Fred)" in out
        assert load_graph(graph_file).has_edge("Fred", "Eva")

    def test_update_out_path(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "updated.json"
        main(["update", "--graph", graph_file, "--delete", "Bob:Dan",
              "--out", str(out_path)])
        assert load_graph(out_path).has_edge("Bob", "Mat")
        assert not load_graph(out_path).has_edge("Bob", "Dan")
        assert load_graph(graph_file).has_edge("Bob", "Dan")  # original intact

    def test_update_without_ops_is_error(self, graph_file, capsys):
        assert main(["update", "--graph", graph_file]) == 2

    def test_bad_edge_spec_is_error(self, graph_file, capsys):
        assert main(["update", "--graph", graph_file, "--insert", "nocolon"]) == 2

    def test_unchanged_delta_message(self, graph_file, pattern_file, capsys):
        main(["update", "--graph", graph_file, "--insert", "Bill:Fred",
              "--pattern", pattern_file])
        assert "ΔM empty" in capsys.readouterr().out

    def test_add_node_with_attrs(self, graph_file, capsys):
        code = main([
            "update", "--graph", graph_file,
            "--add-node", "Amy:field=SA,experience=8",
            "--insert", "Amy:Dan",
        ])
        assert code == 0
        loaded = load_graph(graph_file)
        assert loaded.get("Amy", "experience") == 8
        assert loaded.has_edge("Amy", "Dan")

    def test_set_attr_changes_matches(self, graph_file, pattern_file, capsys):
        main(["update", "--graph", graph_file, "--set-attr", "Walt:experience:4",
              "--pattern", pattern_file])
        out = capsys.readouterr().out
        assert "ΔM -(SA, Walt)" in out

    def test_remove_node(self, graph_file, pattern_file, capsys):
        main(["update", "--graph", graph_file, "--remove-node", "Eva",
              "--pattern", pattern_file])
        out = capsys.readouterr().out
        loaded = load_graph(graph_file)
        assert "Eva" not in loaded
        # Eva was the only tester: the whole match collapses.
        assert "ΔM -(ST, Eva)" in out

    def test_bad_node_spec_is_error(self, graph_file, capsys):
        assert main(["update", "--graph", graph_file,
                     "--add-node", ":broken"]) == 2
        assert main(["update", "--graph", graph_file,
                     "--set-attr", "Walt:experience"]) == 2


class TestLibraryPatterns:
    def test_query_with_library_pattern(self, tmp_path, capsys):
        graph_path = tmp_path / "collab.json"
        main(["generate", "--kind", "collab", "--nodes", "200", "--seed", "3",
              "--out", str(graph_path)])
        capsys.readouterr()
        code = main(["query", "--graph", str(graph_path),
                     "--pattern", "lib:q1-team-star"])
        assert code in (0, 1)  # valid run either way; depends on matches
        out = capsys.readouterr().out
        assert "SA" in out or "no match" in out

    def test_unknown_library_pattern_is_error(self, graph_file, capsys):
        assert main(["query", "--graph", graph_file, "--pattern", "lib:q99"]) == 2
        assert "unknown library query" in capsys.readouterr().err

    def test_show_profile(self, graph_file, capsys):
        assert main(["show", "--graph", graph_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "density:" in out
        assert "out-degree:" in out


class TestCompress:
    def test_compress_reports_ratio(self, graph_file, capsys):
        assert main(["compress", "--graph", graph_file,
                     "--attrs", "field,specialty"]) == 0
        assert "size reduced by" in capsys.readouterr().out

    def test_compress_writes_quotient(self, graph_file, tmp_path, capsys):
        out = tmp_path / "q.json"
        main(["compress", "--graph", graph_file, "--attrs", "field",
              "--out", str(out)])
        quotient = load_graph(out)
        assert quotient.num_nodes <= 9


class TestDemo:
    def test_demo_reproduces_examples(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "SA: Bob, Walt" in out
        assert "1.8000" in out          # f(SA, Bob) = 9/5
        assert "2.3333" in out          # f(SA, Walt) = 7/3
        assert "ΔM +(SD, Fred)" in out  # Example 3


class TestWorkers:
    """CLI error paths and happy paths for the --workers flag."""

    def test_query_parallel_matches_sequential_output(
        self, graph_file, pattern_file, capsys
    ):
        assert main(["query", "--graph", graph_file, "--pattern", pattern_file]) == 0
        sequential = capsys.readouterr().out
        assert main(["query", "--graph", graph_file, "--pattern", pattern_file,
                     "--workers", "2"]) == 0
        assert capsys.readouterr().out == sequential
        assert "SA: Bob, Walt" in sequential

    @pytest.mark.parametrize("workers", ["0", "-4"])
    def test_query_rejects_bad_workers(self, graph_file, pattern_file, capsys,
                                       workers):
        code = main(["query", "--graph", graph_file, "--pattern", pattern_file,
                     "--workers", workers])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--workers: workers must be a positive integer" in err

    @pytest.mark.parametrize("workers", ["0", "-1"])
    def test_batch_rejects_bad_workers(self, graph_file, pattern_file, capsys,
                                       workers):
        code = main(["batch", "--graph", graph_file, "--pattern", pattern_file,
                     "--workers", workers])
        assert code == 2
        assert "--workers: workers must be a positive integer" in capsys.readouterr().err

    def test_batch_single_pattern_with_workers(self, graph_file, pattern_file,
                                               capsys):
        # A one-query batch delegates to per-query sharding; the summary
        # line must still render (regression: KeyError on stats["batch"]).
        code = main(["batch", "--graph", graph_file, "--pattern", pattern_file,
                     "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 1 queries" in out
        assert "2 workers" in out

    def test_batch_parallel_reports_workers(self, graph_file, pattern_file, capsys):
        code = main(["batch", "--graph", graph_file, "--pattern", pattern_file,
                     "--pattern", pattern_file, "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 2 queries" in out
        assert "2 workers" in out

    def test_batch_empty_query_file_is_error(self, graph_file, tmp_path, capsys):
        empty = tmp_path / "empty.pattern"
        empty.write_text("")
        code = main(["batch", "--graph", graph_file, "--pattern", str(empty),
                     "--workers", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_parallel_missing_graph_file_is_error(self, tmp_path,
                                                        pattern_file, capsys):
        code = main(["query", "--graph", str(tmp_path / "none.json"),
                     "--pattern", pattern_file, "--workers", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestOracle:
    def test_oracle_stats_subcommand(self, graph_file, capsys):
        code = main(["oracle", "--graph", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "exact-distance cap: unbounded ('*' covered)" in out
        assert "labels:" in out and "reachability closure:" in out

    def test_oracle_with_cap_and_pattern_routing(self, graph_file, pattern_file, capsys):
        code = main([
            "oracle", "--graph", graph_file, "--cap", "3",
            "--pattern", pattern_file,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exact-distance cap: 3" in out
        assert "route: direct" in out
        assert "distance oracle: warm" in out
        assert "edge " in out  # per-edge kernel routing lines

    def test_query_with_oracle_matches_plain(self, graph_file, pattern_file, capsys):
        plain_code = main(["query", "--graph", graph_file, "--pattern", pattern_file])
        plain_out = capsys.readouterr().out
        code = main([
            "query", "--graph", graph_file, "--pattern", pattern_file,
            "--oracle", "--explain",
        ])
        out = capsys.readouterr().out
        assert code == plain_code == 0
        assert "distance oracle" in out
        assert "kernels used:" in out
        # Identical relation summaries: the oracle changes kernels only.
        assert plain_out.strip().splitlines()[-1] in out

    def test_batch_with_oracle_reports_label_stats(self, graph_file, pattern_file, capsys):
        code = main([
            "batch", "--graph", graph_file,
            "--pattern", pattern_file, "--pattern", pattern_file,
            "--oracle",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "distance oracle:" in out

    def test_oracle_bad_workers_rejected(self, graph_file, capsys):
        code = main(["oracle", "--graph", graph_file, "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err


class TestBudgetFlags:
    """--budget/--time-limit/--allow-partial on query, batch and topk."""

    @pytest.fixture
    def hub_graph_file(self, tmp_path):
        from repro.graph.generators import twitter_like_graph

        return str(save_graph(twitter_like_graph(300, seed=3), tmp_path / "hub.json"))

    @pytest.fixture
    def bomb_file(self, tmp_path):
        bomb = tmp_path / "bomb.pattern"
        bomb.write_text(
            "node A*\nnode B\nnode C\n"
            "edge A -> B : *\nedge B -> C : *\nedge C -> A : *\n"
        )
        return str(bomb)

    def test_query_partial_note_and_estimates(self, hub_graph_file, bomb_file, capsys):
        code = main([
            "query", "--graph", hub_graph_file, "--pattern", bomb_file,
            "--budget", "500", "--allow-partial", "--explain",
        ])
        out = capsys.readouterr().out
        assert code == 1  # partial bomb: no full match
        assert "budget: 500 node visits" in out
        assert "estimate: edge A->B:" in out
        assert "note: partial result — node-budget guard tripped" in out

    def test_query_hard_budget_is_error(self, hub_graph_file, bomb_file, capsys):
        code = main([
            "query", "--graph", hub_graph_file, "--pattern", bomb_file,
            "--budget", "500",
        ])
        assert code == 2
        assert "node-budget" in capsys.readouterr().err

    def test_generous_budget_matches_unguarded(self, graph_file, pattern_file, capsys):
        assert main(["query", "--graph", graph_file, "--pattern", pattern_file]) == 0
        plain_out = capsys.readouterr().out
        code = main([
            "query", "--graph", graph_file, "--pattern", pattern_file,
            "--budget", "1000000000", "--time-limit", "3600",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "note: partial" not in out
        assert plain_out.strip().splitlines()[-1] in out

    def test_budget_flag_validation(self, graph_file, pattern_file, capsys):
        assert main([
            "query", "--graph", graph_file, "--pattern", pattern_file,
            "--budget", "0",
        ]) == 2
        assert "--budget/--time-limit" in capsys.readouterr().err
        assert main([
            "query", "--graph", graph_file, "--pattern", pattern_file,
            "--time-limit", "-1",
        ]) == 2
        assert "--budget/--time-limit" in capsys.readouterr().err
        assert main([
            "query", "--graph", graph_file, "--pattern", pattern_file,
            "--allow-partial",
        ]) == 2
        assert "--allow-partial needs" in capsys.readouterr().err

    def test_batch_marks_partial_queries(self, hub_graph_file, bomb_file, capsys):
        code = main([
            "batch", "--graph", hub_graph_file, "--pattern", bomb_file,
            "--budget", "500", "--allow-partial",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "[partial: node-budget]" in out

    def test_topk_with_budget_runs(self, graph_file, pattern_file, capsys):
        code = main([
            "topk", "--graph", graph_file, "--pattern", pattern_file,
            "-k", "2", "--budget", "1000000000",
        ])
        assert code == 0
        assert "Bob" in capsys.readouterr().out

    def test_query_workers_with_budget(self, hub_graph_file, bomb_file, capsys):
        code = main([
            "query", "--graph", hub_graph_file, "--pattern", bomb_file,
            "--workers", "2", "--budget", "500", "--allow-partial",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "note: partial result" in out


class TestSnapshot:
    def test_save_then_load(self, tmp_path, graph_file, capsys):
        store = str(tmp_path / "store")
        code = main(["snapshot", "save", "--graph", graph_file, "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "graph: 9 nodes, 12 edges" in out
        assert "snapshot:" in out and "fig1.frozen.snap" in out

        code = main(["snapshot", "load", "--store", store, "--name", "fig1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot: 9 nodes, 12 edges" in out
        assert "mapped from:" in out
        assert "validated against stored graph 'fig1'" in out

    def test_save_with_oracle(self, tmp_path, graph_file, capsys):
        store = str(tmp_path / "store")
        code = main([
            "snapshot", "save", "--graph", graph_file, "--store", store,
            "--name", "team", "--oracle", "--oracle-cap", "4",
        ])
        assert code == 0
        assert "oracle:" in capsys.readouterr().out

        code = main(["snapshot", "load", "--store", store, "--name", "team"])
        assert code == 0
        out = capsys.readouterr().out
        assert "oracle: cap 4," in out

    def test_info_lists_sections(self, tmp_path, graph_file, capsys):
        store = str(tmp_path / "store")
        main([
            "snapshot", "save", "--graph", graph_file, "--store", store,
            "--name", "team", "--oracle",
        ])
        capsys.readouterr()
        code = main(["snapshot", "info", "--store", store, "--name", "team"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frozen-graph:" in out
        assert "distance-oracle:" in out
        assert "format v1" in out
        assert "section out_targets:" in out

    def test_info_missing_is_error(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["snapshot", "info", "--store", store, "--name", "ghost"])
        assert code == 2
        assert "no stored snapshot named 'ghost'" in capsys.readouterr().err

    def test_load_missing_is_error(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["snapshot", "load", "--store", store, "--name", "ghost"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_load_detects_corruption(self, tmp_path, graph_file, capsys):
        store = tmp_path / "store"
        main(["snapshot", "save", "--graph", graph_file, "--store", str(store)])
        capsys.readouterr()
        path = store / "snapshots" / "fig1.frozen.snap"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        code = main(["snapshot", "load", "--store", str(store), "--name", "fig1"])
        assert code == 2
        assert "checksum mismatch" in capsys.readouterr().err


class TestServe:
    @pytest.fixture
    def quiet_server(self, monkeypatch):
        """Make `expfinder serve` return right after binding."""
        from repro.server.app import QueryServer

        monkeypatch.setattr(QueryServer, "serve_forever", lambda self: None)

    def test_serve_registers_graph_files(self, graph_file, quiet_server, capsys):
        code = main(["serve", "--port", "0", "--graph", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered 'fig1': 9 nodes / 12 edges, epoch 0" in out
        assert "serving on http://127.0.0.1:" in out

    def test_serve_named_graph_spec(self, graph_file, quiet_server, capsys):
        code = main(["serve", "--port", "0", "--graph", f"team={graph_file}"])
        assert code == 0
        assert "registered 'team'" in capsys.readouterr().out

    def test_serve_bad_graph_spec(self, quiet_server, capsys):
        code = main(["serve", "--port", "0", "--graph", "=oops"])
        assert code == 2
        assert "bad graph spec" in capsys.readouterr().err

    def test_serve_ctrl_c_shuts_down(self, graph_file, monkeypatch, capsys):
        from repro.server.app import QueryServer

        def interrupted(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(QueryServer, "serve_forever", interrupted)
        code = main(["serve", "--port", "0", "--graph", graph_file])
        assert code == 0
        assert "shutting down" in capsys.readouterr().out

    def test_serve_preload_needs_store(self, capsys):
        code = main(["serve", "--port", "0", "--preload", "fig1"])
        assert code == 2
        assert "--preload needs --store" in capsys.readouterr().err

    def test_serve_preload_warm_start(
        self, tmp_path, graph_file, quiet_server, capsys
    ):
        from repro.graph.frozen import FrozenGraph

        store = str(tmp_path / "store")
        main(["snapshot", "save", "--graph", graph_file, "--store", store])
        capsys.readouterr()
        code = main(
            ["serve", "--port", "0", "--store", store, "--preload", "fig1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "preloaded 'fig1'" in out
        assert "snapshot fault-ins, no freeze" in out
        assert FrozenGraph  # snapshot CLI produced the .frozen.snap above

    def test_serve_wal_dir_round_trip(
        self, tmp_path, graph_file, quiet_server, capsys
    ):
        wal_dir = str(tmp_path / "wal")
        code = main(["serve", "--port", "0", "--graph", graph_file,
                     "--wal-dir", wal_dir, "--fsync", "always",
                     "--checkpoint-every", "8"])
        assert code == 0
        capsys.readouterr()
        # second boot, same command line: recovery runs (clean shutdown,
        # so nothing replays) and the --graph seed file must yield to the
        # recovered state instead of colliding with it
        code = main(["serve", "--port", "0", "--graph", graph_file,
                     "--wal-dir", wal_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered 'fig1': replayed 0 batch(es)" in out
        assert "skipped 'fig1': already recovered from the WAL" in out

    def test_serve_wal_ctrl_c_seals_the_log(
        self, tmp_path, graph_file, monkeypatch, capsys
    ):
        from repro.server.app import QueryServer

        def interrupted(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(QueryServer, "serve_forever", interrupted)
        code = main(["serve", "--port", "0", "--graph", graph_file,
                     "--wal-dir", str(tmp_path / "wal")])
        assert code == 0
        out = capsys.readouterr().out
        assert "shutting down" in out
        assert "sealing WAL" in out

    def test_serve_fault_arming_from_env(
        self, tmp_path, graph_file, quiet_server, capsys, monkeypatch
    ):
        from repro.testing.faults import disarm_faults, fault_stats

        monkeypatch.setenv("REPRO_FAULTS", "wal.fsync=crash@999")
        try:
            code = main(["serve", "--port", "0", "--graph", graph_file,
                         "--wal-dir", str(tmp_path / "wal")])
            assert code == 0
            out = capsys.readouterr().out
            assert "fault injection armed" in out
            assert fault_stats()["armed"] == {"wal.fsync": 999}
        finally:
            disarm_faults()

    def test_serve_preload_missing_graph(self, tmp_path, quiet_server, capsys):
        store = str(tmp_path / "store")
        code = main(["serve", "--port", "0", "--store", store,
                     "--preload", "ghost"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_bad_admission_flags(self, capsys):
        code = main(["serve", "--port", "0", "--max-inflight", "0"])
        assert code == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_serve_rejects_bad_default_budget(self, capsys):
        code = main(["serve", "--port", "0", "--default-budget", "-5"])
        assert code == 2
        assert "--default-budget" in capsys.readouterr().err


class TestStats:
    def test_stats_local_engine(self, graph_file, capsys):
        import json

        code = main(["stats", "--graph", graph_file])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["graphs"]["fig1"]["nodes"] == 9
        assert "cache" in document and "oracles" in document

    def test_stats_local_with_query(self, graph_file, pattern_file, capsys):
        import json

        code = main(
            ["stats", "--graph", graph_file, "--pattern", pattern_file]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["cache"]["size"] == 1

    def test_stats_needs_exactly_one_source(self, graph_file, capsys):
        assert main(["stats"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            ["stats", "--graph", graph_file, "--url", "http://x"]
        ) == 2

    def test_stats_from_running_service(self, capsys):
        import json

        from repro.datasets.paper_example import paper_graph
        from repro.server import ExpFinderService, QueryServer

        service = ExpFinderService()
        service.register_graph("fig1", paper_graph())
        with QueryServer(service) as server:
            server.start()
            code = main(["stats", "--url", server.url])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["registry"]["graphs"]["fig1"]["current_epoch"] == 0
        assert "admission" in document

    def test_stats_unreachable_url(self, capsys):
        code = main(["stats", "--url", "http://127.0.0.1:1/nope"])
        assert code == 2
        assert "cannot fetch" in capsys.readouterr().err
