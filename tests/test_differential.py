"""Differential testing: parallel sharded evaluation ≡ sequential evaluation.

Every case generates a seeded random graph and a seeded random pattern,
evaluates both sequentially and through the sharded
:class:`~repro.engine.parallel.ParallelExecutor`, and requires the two
relations to be *byte-identical* (set equality plus equal serialized
forms).  The query-set evaluation literature (Brochier et al.,
arXiv:1806.10813) shows expert-finding results depend heavily on which
queries you test with, so the harness sweeps many query shapes — chains,
cycles, mixed bounds, ``*`` edges, edge-free patterns — not just the paper
example.

Seeds are fixed and appear in the pytest parametrize id (and in every
assertion message), so a failure names the exact case to replay:

    pytest tests/test_differential.py -k "seed17" -x

One worker pool is shared by the whole module; forking per case would
dominate runtime.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.parallel import ParallelExecutor
from repro.graph.digraph import Graph
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_digraph
from repro.graph.oracle import DistanceOracle
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern

BOUNDED_SEEDS = range(60)
SIMULATION_SEEDS = range(60)
ENGINE_SEEDS = range(6)
ORACLE_SEEDS = range(40)


@pytest.fixture(scope="module")
def executor():
    with ParallelExecutor(workers=2) as shared:
        yield shared


def random_case(seed: int, simulation_only: bool = False) -> tuple[Graph, Pattern]:
    """A seeded (graph, pattern) pair; every shape decision comes from seed."""
    rng = random.Random(seed * 2 + int(simulation_only))
    num_nodes = rng.randint(12, 40)
    num_edges = rng.randint(num_nodes, 3 * num_nodes)
    graph = random_digraph(num_nodes, num_edges, seed=seed)

    pattern = Pattern(f"rand-s{seed}")
    names = [f"Q{i}" for i in range(rng.randint(1, 4))]
    for name in names:
        roll = rng.random()
        if roll < 0.40:
            condition = f'label == "L{rng.randrange(3)}"'
        elif roll < 0.70:
            condition = f"x >= {rng.randint(0, 6)}"
        elif roll < 0.85:
            condition = 'label in ["L0", "L1"]'
        else:
            condition = None  # unconstrained node: full-graph candidates
        pattern.add_node(name, condition)
    pairs = [(a, b) for a in names for b in names if a != b]
    rng.shuffle(pairs)
    for source, target in pairs[: rng.randint(0, min(len(pairs), len(names) + 1))]:
        bound = 1 if simulation_only else rng.choice([1, 1, 2, 3, None])
        pattern.add_edge(source, target, bound)
    return graph, pattern


def sequential_result(graph: Graph, pattern: Pattern):
    """What the planner would run: simulation iff every bound is 1."""
    if pattern.is_simulation_pattern:
        return match_simulation(graph, pattern)
    return match_bounded(graph, pattern)


def assert_identical(seed, parallel, sequential) -> None:
    __tracebackhide__ = True
    assert parallel.relation == sequential.relation, (
        f"seed {seed}: parallel relation diverged\n"
        f"  parallel:   {parallel.relation!r}\n"
        f"  sequential: {sequential.relation!r}"
    )
    # Byte-identity, not just set equality: the canonical serialized forms
    # must match too (this is what persists and crosses process borders).
    assert parallel.relation.to_dict() == sequential.relation.to_dict(), (
        f"seed {seed}: serialized relations differ"
    )


@pytest.mark.parametrize("seed", BOUNDED_SEEDS, ids=lambda s: f"seed{s}")
def test_parallel_equals_sequential_bounded(executor, seed):
    graph, pattern = random_case(seed)
    sequential = sequential_result(graph, pattern)
    parallel = executor.match(graph, pattern)
    assert_identical(seed, parallel, sequential)
    # The merged state must also be internally consistent, not merely land
    # on the right answer; this catches S/R/cnt merge bugs at their source.
    if parallel._state is not None:
        parallel._state.check_invariants()


@pytest.mark.parametrize("seed", SIMULATION_SEEDS, ids=lambda s: f"seed{s}")
def test_parallel_equals_sequential_simulation(executor, seed):
    """All-bounds-1 cases, plus the cross-matcher invariant.

    With every bound 1, bounded simulation's fixpoint coincides with plain
    simulation's, so all three evaluators must agree: the quadratic
    matcher, the cubic matcher, and the sharded parallel path.
    """
    graph, pattern = random_case(seed, simulation_only=True)
    via_simulation = match_simulation(graph, pattern)
    via_bounded = match_bounded(graph, pattern)
    assert via_bounded.relation == via_simulation.relation, (
        f"seed {seed}: bounded(all bounds=1) != plain simulation"
    )
    parallel = executor.match(graph, pattern)
    assert_identical(seed, parallel, via_simulation)


@pytest.mark.parametrize("seed", ENGINE_SEEDS, ids=lambda s: f"seed{s}")
def test_engine_workers_equals_sequential(seed):
    """The engine's ``workers=N`` route produces the sequential relation."""
    graph, pattern = random_case(seed)
    engine = QueryEngine()
    engine.register_graph("g", graph)
    sequential = engine.evaluate("g", pattern, use_cache=False, cache_result=False)
    parallel = engine.evaluate(
        "g", pattern, use_cache=False, cache_result=False, workers=2
    )
    assert_identical(seed, parallel, sequential)
    assert parallel.stats["parallel"]["workers"] == 2


def test_engine_batch_workers_equals_sequential():
    """Per-batch parallelism: one pool pass over many distinct queries."""
    cases = [random_case(seed) for seed in range(8)]
    graph = cases[0][0]
    patterns = [pattern for _graph, pattern in cases]
    engine = QueryEngine()
    engine.register_graph("g", graph)
    sequential = engine.evaluate_many(
        "g", patterns, use_cache=False, cache_result=False
    )
    parallel = engine.evaluate_many(
        "g", patterns, use_cache=False, cache_result=False, workers=2
    )
    for seed, (seq, par) in enumerate(zip(sequential, parallel)):
        assert_identical(seed, par, seq)
    assert parallel[0].stats["batch"]["workers"] == 2


# ----------------------------------------------------------------------
# oracle-kernel differential: oracle-pairwise ≡ per-source BFS ≡ bitset
# ----------------------------------------------------------------------

def _forced_kernel_costs(kernel: str):
    """A kernel_costs wrapper that makes one kernel win every cost race."""
    from repro.engine import planner

    original = planner.kernel_costs

    def forced(*args, **kwargs):
        costs = original(*args, **kwargs)
        if kernel in costs:
            costs[kernel] = -1.0
        return costs

    return original, forced


@pytest.mark.parametrize("seed", ORACLE_SEEDS, ids=lambda s: f"seed{s}")
def test_oracle_kernel_equals_enumeration_kernels(seed, monkeypatch):
    """The three row kernels are byte-identical on the same queries.

    Per seeded case, the same (graph, pattern) is evaluated three times
    over the same snapshot: per-source BFS (bulk depth pushed out of
    reach), bitset (bulk depth 1), and oracle-pairwise (cost race rigged
    so every covered edge routes to the labels).  Relations *and* full
    refinement states (S rows with distances) must agree exactly.
    """
    import repro.matching.bounded as bounded_module
    from repro.engine import planner

    graph, pattern = random_case(seed)
    if pattern.num_edges == 0:
        pytest.skip("edge-free pattern exercises no row kernel")
    frozen = FrozenGraph.freeze(graph)
    oracle = DistanceOracle.build(frozen)

    monkeypatch.setattr(bounded_module, "FROZEN_BULK_DEPTH", 99)
    per_source = match_bounded(graph, pattern, frozen=frozen)
    monkeypatch.setattr(bounded_module, "FROZEN_BULK_DEPTH", 1)
    bitset = match_bounded(graph, pattern, frozen=frozen)
    monkeypatch.setattr(bounded_module, "FROZEN_BULK_DEPTH", 5)
    original, forced = _forced_kernel_costs(planner.KERNEL_ORACLE)
    monkeypatch.setattr(planner, "kernel_costs", forced)
    via_oracle = match_bounded(graph, pattern, frozen=frozen, oracle=oracle)
    monkeypatch.setattr(planner, "kernel_costs", original)

    assert_identical(seed, bitset, per_source)
    assert_identical(seed, via_oracle, per_source)
    for name, result in (("bitset", bitset), ("oracle", via_oracle)):
        assert result._state.S == per_source._state.S, (
            f"seed {seed}: {name} S rows (entries + distances) diverged"
        )
    assert any(
        route.kernel == planner.KERNEL_ORACLE
        for route in via_oracle._state.kernels.values()
    ), f"seed {seed}: forced routing did not reach the oracle"
    via_oracle._state.check_invariants()


# ----------------------------------------------------------------------
# guard differential: a generous budget must change nothing, ever
# ----------------------------------------------------------------------
#
# Guarded evaluation swaps the planner's analytic frontier for sampled
# estimates and threads charge/should_stop checks through every kernel —
# none of which may perturb the answer when the budget never trips.  The
# full seed sweep (60 bounded + 60 simulation + 6 engine + 1 batch = 127
# cases) is repeated with a budget no test-sized case can blow.

GENEROUS_BUDGET_VISITS = 10**9


def generous_budget():
    from repro.engine.estimator import QueryBudget

    return QueryBudget(node_visits=GENEROUS_BUDGET_VISITS, allow_partial=True)


@pytest.mark.parametrize("seed", BOUNDED_SEEDS, ids=lambda s: f"seed{s}")
def test_guarded_equals_unguarded_bounded(seed):
    graph, pattern = random_case(seed)
    sequential = sequential_result(graph, pattern)
    guarded = match_bounded(graph, pattern, budget=generous_budget())
    assert_identical(seed, guarded, sequential)
    assert guarded.stats["partial"] is False, (
        f"seed {seed}: a {GENEROUS_BUDGET_VISITS}-visit budget tripped"
    )


@pytest.mark.parametrize("seed", SIMULATION_SEEDS, ids=lambda s: f"seed{s}")
def test_guarded_equals_unguarded_simulation(seed):
    """All-bounds-1 patterns through the *bounded* matcher under guard."""
    graph, pattern = random_case(seed, simulation_only=True)
    guarded = match_bounded(graph, pattern, budget=generous_budget())
    assert_identical(seed, guarded, match_simulation(graph, pattern))
    assert guarded.stats["partial"] is False


@pytest.mark.parametrize("seed", ENGINE_SEEDS, ids=lambda s: f"seed{s}")
def test_engine_guarded_workers_equals_sequential(seed):
    """Budget + sharded workers + generous limits = the sequential answer."""
    graph, pattern = random_case(seed)
    engine = QueryEngine()
    engine.register_graph("g", graph)
    kwargs = dict(use_cache=False, cache_result=False)
    sequential = engine.evaluate("g", pattern, **kwargs)
    guarded = engine.evaluate(
        "g", pattern, budget=generous_budget(), workers=2, **kwargs
    )
    assert_identical(seed, guarded, sequential)
    assert not guarded.stats.get("partial")


def test_engine_batch_guarded_equals_unguarded():
    cases = [random_case(seed) for seed in range(8)]
    graph = cases[0][0]
    patterns = [pattern for _graph, pattern in cases]
    engine = QueryEngine()
    engine.register_graph("g", graph)
    kwargs = dict(use_cache=False, cache_result=False)
    unguarded = engine.evaluate_many("g", patterns, **kwargs)
    guarded = engine.evaluate_many(
        "g", patterns, budget=generous_budget(), **kwargs
    )
    for seed, (plain, limited) in enumerate(zip(unguarded, guarded)):
        assert_identical(seed, limited, plain)
        assert not limited.stats.get("partial")


@pytest.mark.parametrize("seed", range(6), ids=lambda s: f"seed{s}")
def test_engine_oracle_equals_plain_evaluation(seed):
    """enable_oracle() changes kernels, never results (engine level)."""
    graph, pattern = random_case(seed)
    plain = QueryEngine()
    plain.register_graph("g", graph)
    accelerated = QueryEngine()
    accelerated.register_graph("g", graph)
    accelerated.enable_oracle("g")
    kwargs = dict(use_cache=False, cache_result=False)
    assert_identical(
        seed,
        accelerated.evaluate("g", pattern, **kwargs),
        plain.evaluate("g", pattern, **kwargs),
    )


# ----------------------------------------------------------------------
# store-loaded snapshots: mmap files in, byte-identical answers out
# ----------------------------------------------------------------------
# The full 127-seed sweep (60 bounded + 60 simulation + 6 engine + 1
# batch) re-runs with snapshots and oracles served from the GraphStore's
# binary files instead of built in-process: freeze/build -> save ->
# mmap-load -> evaluate must reproduce the sequential result byte for
# byte.  This is the acceptance gate for the persistence layer — a codec
# or alignment bug anywhere surfaces as a named seed here.


@pytest.fixture(scope="module")
def snapshot_store(tmp_path_factory):
    from repro.engine.storage import GraphStore

    return GraphStore(tmp_path_factory.mktemp("snapshot-store"))


def _store_served(store, tag, graph):
    """Persist a graph's snapshot + oracle, reload both mmap-backed."""
    name = f"case-{tag}"
    store.save_snapshot(name, FrozenGraph.freeze(graph))
    store.save_oracle(name, DistanceOracle.build(store.load_snapshot(name)))
    return (
        store.load_snapshot(name, expected_version=graph.version),
        store.load_oracle(name, expected_version=graph.version),
    )


@pytest.mark.parametrize("seed", BOUNDED_SEEDS, ids=lambda s: f"seed{s}")
def test_store_loaded_equals_sequential_bounded(snapshot_store, seed):
    graph, pattern = random_case(seed)
    sequential = sequential_result(graph, pattern)
    frozen, oracle = _store_served(snapshot_store, f"b{seed}", graph)
    assert frozen.path is not None and oracle.path is not None
    if pattern.is_simulation_pattern:
        via_store = match_simulation(graph, pattern, frozen=frozen)
    else:
        via_store = match_bounded(graph, pattern, frozen=frozen, oracle=oracle)
    assert_identical(seed, via_store, sequential)


@pytest.mark.parametrize("seed", SIMULATION_SEEDS, ids=lambda s: f"seed{s}")
def test_store_loaded_equals_sequential_simulation(snapshot_store, seed):
    graph, pattern = random_case(seed, simulation_only=True)
    sequential = match_simulation(graph, pattern)
    frozen, _oracle = _store_served(snapshot_store, f"s{seed}", graph)
    via_store = match_simulation(graph, pattern, frozen=frozen)
    assert_identical(seed, via_store, sequential)


@pytest.mark.parametrize("seed", ENGINE_SEEDS, ids=lambda s: f"seed{s}")
def test_engine_fault_in_equals_sequential(seed, tmp_path):
    """A cold engine on the same store faults files in — same answers."""
    from repro.engine.storage import GraphStore

    graph, pattern = random_case(seed)
    store = GraphStore(tmp_path)
    warm = QueryEngine(store=store)
    warm.register_graph("g", graph)
    warm.enable_oracle("g")
    warm.persist_snapshot("g", include_oracle=True)
    warm.close()

    sequential = sequential_result(graph, pattern)
    cold = QueryEngine(store=store)
    cold.register_graph("g", graph)
    cold.enable_oracle("g")
    served = cold.evaluate("g", pattern, use_cache=False, cache_result=False)
    assert_identical(seed, served, sequential)
    snapshot_stats = cold.snapshot_stats()
    assert snapshot_stats["fault_ins"] == 1, f"seed {seed}: snapshot not faulted in"
    assert snapshot_stats["builds"] == 0, f"seed {seed}: engine re-froze anyway"
    assert cold.oracle_cache_stats()["builds"] == 0, (
        f"seed {seed}: engine rebuilt the oracle despite the stored labels"
    )
    cold.close()


def test_engine_batch_store_loaded_equals_sequential(tmp_path):
    """Batch evaluation over a faulted-in snapshot matches the plain path."""
    from repro.engine.storage import GraphStore

    cases = [random_case(seed) for seed in range(8)]
    graph = cases[0][0]
    patterns = [pattern for _graph, pattern in cases]
    store = GraphStore(tmp_path)
    warm = QueryEngine(store=store)
    warm.register_graph("g", graph)
    warm.persist_snapshot("g")
    warm.close()

    plain = QueryEngine()
    plain.register_graph("g", graph)
    sequential = plain.evaluate_many("g", patterns, use_cache=False, cache_result=False)
    cold = QueryEngine(store=store)
    cold.register_graph("g", graph)
    served = cold.evaluate_many("g", patterns, use_cache=False, cache_result=False)
    for seed, (seq, via_store) in enumerate(zip(sequential, served)):
        assert_identical(seed, via_store, seq)
    assert cold.snapshot_stats()["fault_ins"] == 1
    assert cold.snapshot_stats()["builds"] == 0
