"""Unit tests for the query planner and the per-edge kernel cost model."""

from repro.datasets.paper_example import paper_pattern
from repro.engine.planner import (
    ALGORITHM_BOUNDED,
    ALGORITHM_SIMULATION,
    KERNEL_BITSET,
    KERNEL_ORACLE,
    KERNEL_PER_SOURCE,
    ROUTE_CACHE,
    ROUTE_COMPRESSED,
    ROUTE_DIRECT,
    Plan,
    choose_algorithm,
    enumeration_kernel,
    estimate_levels,
    kernel_costs,
    make_plan,
    route_edge,
)
from repro.pattern.builder import PatternBuilder

#: A hub-structured oracle profile (tiny measured labels), like the ones
#: twitter-shaped graphs produce.
HUBBY = {"cap": None, "avg_out_label": 5.0, "avg_in_label": 13.0}

#: A hub-poor profile: labels comparable to ball volumes, like the sparse
#: collaboration graphs produce — the oracle should lose the cost race.
HUB_POOR = {"cap": 6, "avg_out_label": 270.0, "avg_in_label": 350.0}


def unit_pattern():
    return PatternBuilder().node("A").node("B").edge("A", "B", 1).build()


class TestAlgorithmChoice:
    def test_bounded_for_paper_query(self):
        algorithm, _reason = choose_algorithm(paper_pattern())
        assert algorithm == ALGORITHM_BOUNDED

    def test_simulation_for_unit_bounds(self):
        algorithm, _reason = choose_algorithm(unit_pattern())
        assert algorithm == ALGORITHM_SIMULATION

    def test_unbounded_edge_forces_bounded(self):
        q = PatternBuilder().node("A").node("B").edge("A", "B", None).build()
        assert choose_algorithm(q)[0] == ALGORITHM_BOUNDED


class TestRouteOrder:
    def test_cache_wins(self):
        plan = make_plan(
            paper_pattern(), cached=True,
            compression_available=True, compression_compatible=True,
        )
        assert plan.route == ROUTE_CACHE

    def test_compressed_when_not_cached(self):
        plan = make_plan(
            paper_pattern(), cached=False,
            compression_available=True, compression_compatible=True,
        )
        assert plan.route == ROUTE_COMPRESSED

    def test_direct_when_nothing_available(self):
        assert make_plan(paper_pattern()).route == ROUTE_DIRECT

    def test_incompatible_compression_falls_back(self):
        plan = make_plan(
            paper_pattern(),
            compression_available=True, compression_compatible=False,
        )
        assert plan.route == ROUTE_DIRECT
        assert any("does not preserve" in reason for reason in plan.reasons)

    def test_use_cache_false_skips_cache(self):
        plan = make_plan(paper_pattern(), cached=True, use_cache=False)
        assert plan.route == ROUTE_DIRECT

    def test_use_compression_false_skips_compression(self):
        plan = make_plan(
            paper_pattern(),
            compression_available=True, compression_compatible=True,
            use_compression=False,
        )
        assert plan.route == ROUTE_DIRECT

    def test_explain_mentions_route_and_algorithm(self):
        plan = make_plan(paper_pattern())
        text = plan.explain()
        assert "route: direct" in text
        assert "bounded-simulation" in text
        assert text.count("-") >= 1  # reasons are listed


class TestKernelCostModel:
    def test_selective_deep_edge_routes_to_oracle(self):
        route = route_edge(("A", "B"), None, 50, 500, 50_000, 150_000, HUBBY)
        assert route.kernel == KERNEL_ORACLE

    def test_broad_candidates_fall_back_to_enumeration(self):
        route = route_edge(("A", "B"), None, 20_000, 30_000, 50_000, 150_000, HUBBY)
        assert route.kernel == KERNEL_BITSET

    def test_hub_poor_labels_lose_the_cost_race(self):
        # Same cardinalities that favour the oracle under HUBBY: measured
        # label sizes are what flips the decision, so the model is
        # self-calibrating across graph structures.
        route = route_edge(("A", "B"), 6, 300, 1000, 50_000, 125_000, HUB_POOR)
        assert route.kernel != KERNEL_ORACLE

    def test_no_profile_means_no_oracle_kernel(self):
        costs = kernel_costs(50, 500, None, 50_000, 150_000, None)
        assert KERNEL_ORACLE not in costs
        route = route_edge(("A", "B"), None, 50, 500, 50_000, 150_000, None)
        assert route.kernel in (KERNEL_BITSET, KERNEL_PER_SOURCE)

    def test_capped_profile_does_not_cover_deeper_bounds(self):
        capped = {"cap": 3, "avg_out_label": 5.0, "avg_in_label": 13.0}
        assert KERNEL_ORACLE in kernel_costs(10, 10, 3, 1000, 3000, capped)
        assert KERNEL_ORACLE not in kernel_costs(10, 10, 4, 1000, 3000, capped)
        assert KERNEL_ORACLE not in kernel_costs(10, 10, None, 1000, 3000, capped)

    def test_enumeration_split_matches_the_calibrated_rule(self):
        assert enumeration_kernel(2, 100, 5) == KERNEL_PER_SOURCE
        assert enumeration_kernel(5, 100, 5) == KERNEL_BITSET
        assert enumeration_kernel(None, 100, 5) == KERNEL_BITSET
        assert enumeration_kernel(9, 1, 5) == KERNEL_PER_SOURCE  # single source
        assert enumeration_kernel(None, 1, 5) == KERNEL_BITSET

    def test_estimate_levels(self):
        assert estimate_levels(3, 50_000, 2.5) == 3
        unbounded = estimate_levels(None, 50_000, 3.0)
        assert 4 <= unbounded <= 40
        assert estimate_levels(None, 1, 3.0) == 1

    def test_route_carries_every_estimate_sorted(self):
        route = route_edge(("A", "B"), None, 50, 500, 50_000, 150_000, HUBBY)
        kernels = [kernel for kernel, _cost in route.costs]
        assert set(kernels) == {KERNEL_ORACLE, KERNEL_BITSET, KERNEL_PER_SOURCE}
        costs = [cost for _kernel, cost in route.costs]
        assert costs == sorted(costs)
        assert route.costs[0][0] == route.kernel  # the winner is the cheapest

    def test_describe_names_edge_bound_and_kernel(self):
        route = route_edge(("SA", "ST"), None, 50, 500, 50_000, 150_000, HUBBY)
        text = route.describe()
        assert "SA->ST" in text and "bound *" in text
        assert KERNEL_ORACLE in text and "50x500" in text

    def test_plan_explain_includes_edge_routes(self):
        route = route_edge(("SA", "ST"), 2, 5, 7, 100, 300, None)
        plan = Plan(ROUTE_DIRECT, ALGORITHM_BOUNDED, ("because",), (route,))
        text = plan.explain()
        assert "edge SA->ST" in text
        assert route.kernel in text
