"""Unit tests for the query planner."""

from repro.datasets.paper_example import paper_pattern
from repro.engine.planner import (
    ALGORITHM_BOUNDED,
    ALGORITHM_SIMULATION,
    ROUTE_CACHE,
    ROUTE_COMPRESSED,
    ROUTE_DIRECT,
    choose_algorithm,
    make_plan,
)
from repro.pattern.builder import PatternBuilder


def unit_pattern():
    return PatternBuilder().node("A").node("B").edge("A", "B", 1).build()


class TestAlgorithmChoice:
    def test_bounded_for_paper_query(self):
        algorithm, _reason = choose_algorithm(paper_pattern())
        assert algorithm == ALGORITHM_BOUNDED

    def test_simulation_for_unit_bounds(self):
        algorithm, _reason = choose_algorithm(unit_pattern())
        assert algorithm == ALGORITHM_SIMULATION

    def test_unbounded_edge_forces_bounded(self):
        q = PatternBuilder().node("A").node("B").edge("A", "B", None).build()
        assert choose_algorithm(q)[0] == ALGORITHM_BOUNDED


class TestRouteOrder:
    def test_cache_wins(self):
        plan = make_plan(
            paper_pattern(), cached=True,
            compression_available=True, compression_compatible=True,
        )
        assert plan.route == ROUTE_CACHE

    def test_compressed_when_not_cached(self):
        plan = make_plan(
            paper_pattern(), cached=False,
            compression_available=True, compression_compatible=True,
        )
        assert plan.route == ROUTE_COMPRESSED

    def test_direct_when_nothing_available(self):
        assert make_plan(paper_pattern()).route == ROUTE_DIRECT

    def test_incompatible_compression_falls_back(self):
        plan = make_plan(
            paper_pattern(),
            compression_available=True, compression_compatible=False,
        )
        assert plan.route == ROUTE_DIRECT
        assert any("does not preserve" in reason for reason in plan.reasons)

    def test_use_cache_false_skips_cache(self):
        plan = make_plan(paper_pattern(), cached=True, use_cache=False)
        assert plan.route == ROUTE_DIRECT

    def test_use_compression_false_skips_compression(self):
        plan = make_plan(
            paper_pattern(),
            compression_available=True, compression_compatible=True,
            use_compression=False,
        )
        assert plan.route == ROUTE_DIRECT

    def test_explain_mentions_route_and_algorithm(self):
        plan = make_plan(paper_pattern())
        text = plan.explain()
        assert "route: direct" in text
        assert "bounded-simulation" in text
        assert text.count("-") >= 1  # reasons are listed
