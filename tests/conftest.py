"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.graph.digraph import Graph
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern


@pytest.fixture
def fig1() -> Graph:
    """The paper's Fig. 1 collaboration network (without edge e1)."""
    return paper_graph()


@pytest.fixture
def fig1_with_e1() -> Graph:
    return paper_graph(include_e1=True)


@pytest.fixture
def fig1_query() -> Pattern:
    return paper_pattern()


@pytest.fixture
def diamond() -> Graph:
    """a -> b -> d, a -> c -> d with distinct labels."""
    graph = Graph(name="diamond")
    graph.add_node("a", label="A")
    graph.add_node("b", label="B")
    graph.add_node("c", label="C")
    graph.add_node("d", label="D")
    graph.add_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    return graph


@pytest.fixture
def cycle3() -> Graph:
    """A labelled 3-cycle: x -> y -> z -> x."""
    graph = Graph(name="cycle3")
    graph.add_node("x", label="X")
    graph.add_node("y", label="Y")
    graph.add_node("z", label="Z")
    graph.add_edges([("x", "y"), ("y", "z"), ("z", "x")])
    return graph


@pytest.fixture
def chain_pattern() -> Pattern:
    """A 2-node simulation pattern over `label` attributes."""
    return (
        PatternBuilder("chain")
        .node("A", 'label == "A"', output=True)
        .node("B", 'label == "B"')
        .edge("A", "B", 1)
        .build()
    )


def make_labelled_graph(edges: list[tuple[str, str]], labels: dict[str, str]) -> Graph:
    """Helper used across test modules."""
    graph = Graph()
    for node, label in labels.items():
        graph.add_node(node, label=label)
    graph.add_edges(edges)
    return graph
