"""Unit tests for plain graph simulation."""

import pytest

from repro.graph.digraph import Graph
from repro.matching.reference import naive_simulation
from repro.matching.simulation import (
    match_simulation,
    simulates,
    simulation_candidates,
)
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern

from tests.conftest import make_labelled_graph


def chain_query(*labels: str) -> Pattern:
    builder = PatternBuilder()
    for label in labels:
        builder.node(label, f'label == "{label}"')
    for left, right in zip(labels, labels[1:]):
        builder.edge(left, right, 1)
    return builder.build()


class TestCandidates:
    def test_candidates_by_predicate(self):
        g = make_labelled_graph([], {"a": "A", "b": "B", "a2": "A"})
        q = chain_query("A", "B")
        cands = simulation_candidates(g, q)
        assert cands["A"] == {"a", "a2"}
        assert cands["B"] == {"b"}

    def test_no_candidates(self):
        g = make_labelled_graph([], {"a": "A"})
        q = chain_query("Z")
        assert simulation_candidates(g, q)["Z"] == set()


class TestMatchSimulation:
    def test_single_edge_match(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        result = match_simulation(g, chain_query("A", "B"))
        assert sorted(result.relation.pairs()) == [("A", "a"), ("B", "b")]

    def test_missing_edge_means_empty(self):
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        result = match_simulation(g, chain_query("A", "B"))
        assert result.relation.is_empty
        assert not result.is_match

    def test_one_pattern_node_to_many(self):
        g = make_labelled_graph(
            [("a", "b1"), ("a", "b2")], {"a": "A", "b1": "B", "b2": "B"}
        )
        result = match_simulation(g, chain_query("A", "B"))
        assert result.relation.matches_of("B") == {"b1", "b2"}

    def test_cascading_removal(self):
        # a -> b -> (nothing): b fails B->C so a fails A->B.
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B", "c": "C"})
        result = match_simulation(g, chain_query("A", "B", "C"))
        assert result.relation.is_empty

    def test_chain_of_three_matches(self):
        g = make_labelled_graph(
            [("a", "b"), ("b", "c")], {"a": "A", "b": "B", "c": "C"}
        )
        result = match_simulation(g, chain_query("A", "B", "C"))
        assert result.relation.num_pairs == 3

    def test_cyclic_pattern_on_cycle(self, cycle3: Graph):
        q = (
            PatternBuilder()
            .node("X", 'label == "X"')
            .node("Y", 'label == "Y"')
            .node("Z", 'label == "Z"')
            .edge("X", "Y", 1)
            .edge("Y", "Z", 1)
            .edge("Z", "X", 1)
            .build()
        )
        result = match_simulation(cycle3, q)
        assert sorted(result.relation.pairs()) == [("X", "x"), ("Y", "y"), ("Z", "z")]

    def test_cyclic_pattern_on_path_fails(self):
        g = make_labelled_graph([("x", "y")], {"x": "X", "y": "Y"})
        q = (
            PatternBuilder()
            .node("X", 'label == "X"')
            .node("Y", 'label == "Y"')
            .edge("X", "Y", 1)
            .edge("Y", "X", 1)
            .build()
        )
        assert match_simulation(g, q).relation.is_empty

    def test_pattern_self_loop_needs_graph_cycle(self):
        q = Pattern()
        q.add_node("A", 'label == "A"')
        q.add_edge("A", "A", 1)
        no_cycle = make_labelled_graph([("a", "b")], {"a": "A", "b": "A"})
        # b has no outgoing edge to an A, so b fails; then a's only A-successor
        # is gone and a fails too.
        assert match_simulation(no_cycle, q).relation.is_empty
        with_cycle = make_labelled_graph([("a", "a2"), ("a2", "a")], {"a": "A", "a2": "A"})
        assert match_simulation(with_cycle, q).relation.num_pairs == 2

    def test_edgeless_pattern_matches_by_predicate_only(self):
        g = make_labelled_graph([], {"a": "A", "b": "A", "c": "B"})
        q = Pattern()
        q.add_node("A", 'label == "A"')
        assert match_simulation(g, q).relation.matches_of("A") == {"a", "b"}

    def test_stats_record_algorithm(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        result = match_simulation(g, chain_query("A", "B"))
        assert result.stats["algorithm"] == "simulation"
        assert result.stats["seconds"] >= 0

    def test_simulation_equals_bounded_with_unit_bounds(self, fig1, fig1_query):
        from repro.matching.bounded import match_bounded

        # Rebuild the paper query with all bounds 1; the two matchers must agree.
        unit = Pattern()
        for node in fig1_query.nodes():
            unit.add_node(node, fig1_query.predicate(node))
        for source, target, _bound in fig1_query.edges():
            unit.add_edge(source, target, 1)
        assert match_simulation(fig1, unit).relation == match_bounded(fig1, unit).relation

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_naive_on_random_graphs(self, seed):
        from repro.graph.generators import random_digraph

        g = random_digraph(18, 45, num_labels=3, seed=seed)
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .node("C", 'label == "L2"')
            .edge("A", "B", 1)
            .edge("B", "C", 1)
            .edge("C", "A", 1)
            .build()
        )
        assert match_simulation(g, q).relation == naive_simulation(g, q)


class TestSimulatesChecker:
    def test_valid_relation_accepted(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        assert simulates(g, chain_query("A", "B"), [("A", "a"), ("B", "b")])

    def test_predicate_violation_rejected(self):
        g = make_labelled_graph([("a", "b")], {"a": "A", "b": "B"})
        assert not simulates(g, chain_query("A", "B"), [("A", "b")])

    def test_edge_violation_rejected(self):
        g = make_labelled_graph([], {"a": "A", "b": "B"})
        assert not simulates(g, chain_query("A", "B"), [("A", "a"), ("B", "b")])
