"""Round-trip tests for result-graph persistence."""

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.storage import GraphStore
from repro.errors import EvaluationError, StorageError
from repro.matching.bounded import match_bounded
from repro.matching.result_graph import ResultGraph


@pytest.fixture
def fig1_result_graph():
    return match_bounded(paper_graph(), paper_pattern()).result_graph()


class TestDictRoundTrip:
    def test_round_trip_preserves_structure(self, fig1_result_graph):
        graph = paper_graph()
        pattern = paper_pattern()
        payload = fig1_result_graph.to_dict()
        loaded = ResultGraph.from_dict(payload, graph, pattern)
        assert set(loaded.edges()) == set(fig1_result_graph.edges())
        assert set(loaded.nodes()) == set(fig1_result_graph.nodes())
        for node in loaded.nodes():
            assert loaded.matched_pattern_nodes(node) == (
                fig1_result_graph.matched_pattern_nodes(node)
            )

    def test_ranking_survives_round_trip(self, fig1_result_graph):
        from repro.ranking.social_impact import rank_matches

        loaded = ResultGraph.from_dict(
            fig1_result_graph.to_dict(), paper_graph(), paper_pattern()
        )
        assert [r.node for r in rank_matches(loaded)] == ["Bob", "Walt"]
        assert rank_matches(loaded)[0].rank == pytest.approx(9 / 5)

    def test_rejects_wrong_format(self):
        with pytest.raises(EvaluationError, match="not a repro.result_graph"):
            ResultGraph.from_dict({"format": "x"}, paper_graph(), paper_pattern())

    def test_rejects_unknown_graph_node(self, fig1_result_graph):
        payload = fig1_result_graph.to_dict()
        payload["nodes"][0]["id"] = "Nobody"
        with pytest.raises(EvaluationError, match="missing from graph"):
            ResultGraph.from_dict(payload, paper_graph(), paper_pattern())

    def test_rejects_unknown_pattern_node(self, fig1_result_graph):
        payload = fig1_result_graph.to_dict()
        payload["nodes"][0]["matches"] = ["XX"]
        with pytest.raises(EvaluationError, match="unknown pattern node"):
            ResultGraph.from_dict(payload, paper_graph(), paper_pattern())

    def test_rejects_malformed_payload(self):
        payload = {"format": "repro.result_graph", "version": 1, "nodes": [{}],
                   "edges": []}
        with pytest.raises(EvaluationError, match="malformed"):
            ResultGraph.from_dict(payload, paper_graph(), paper_pattern())


class TestStoreIntegration:
    def test_save_and_load(self, tmp_path, fig1_result_graph):
        store = GraphStore(tmp_path)
        store.save_result_graph("fig1-team", fig1_result_graph)
        loaded = store.load_result_graph("fig1-team", paper_graph(), paper_pattern())
        assert set(loaded.edges()) == set(fig1_result_graph.edges())

    def test_listing_separates_kinds(self, tmp_path, fig1_result_graph):
        store = GraphStore(tmp_path)
        store.save_result_graph("rg1", fig1_result_graph)
        result = match_bounded(paper_graph(), paper_pattern())
        store.save_relation("rel1", result.relation)
        assert store.list_result_graphs() == ["rg1"]
        assert store.list_relations() == ["rel1"]

    def test_load_missing_raises(self, tmp_path):
        store = GraphStore(tmp_path)
        with pytest.raises(StorageError, match="no stored result graph"):
            store.load_result_graph("nope", paper_graph(), paper_pattern())

    def test_corrupt_file_raises(self, tmp_path, fig1_result_graph):
        store = GraphStore(tmp_path)
        path = store.save_result_graph("bad", fig1_result_graph)
        path.write_text("{]")
        with pytest.raises(StorageError, match="malformed"):
            store.load_result_graph("bad", paper_graph(), paper_pattern())
