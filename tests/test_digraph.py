"""Unit tests for the directed attributed graph."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph


@pytest.fixture
def small() -> Graph:
    g = Graph(name="small")
    g.add_node("a", kind="x")
    g.add_node("b", kind="y")
    g.add_node("c")
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.size == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_node_with_attrs(self):
        g = Graph()
        g.add_node("a", field="SA", experience=7)
        assert g.attrs("a") == {"field": "SA", "experience": 7}

    def test_re_adding_node_merges_attrs(self):
        g = Graph()
        g.add_node("a", x=1)
        g.add_node("a", y=2)
        assert g.attrs("a") == {"x": 1, "y": 2}

    def test_re_adding_node_keeps_edges(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b")
        g.add_node("a", x=1)
        assert g.has_edge("a", "b")

    def test_add_nodes_bulk(self):
        g = Graph()
        g.add_nodes(["a", "b", "c"])
        assert g.num_nodes == 3

    def test_add_edge_requires_source(self):
        g = Graph()
        g.add_node("b")
        with pytest.raises(GraphError, match="unknown source"):
            g.add_edge("a", "b")

    def test_add_edge_requires_target(self):
        g = Graph()
        g.add_node("a")
        with pytest.raises(GraphError, match="unknown target"):
            g.add_edge("a", "b")

    def test_duplicate_edge_not_stored(self):
        g = Graph()
        g.add_nodes(["a", "b"])
        assert g.add_edge("a", "b") is True
        assert g.add_edge("a", "b") is False
        assert g.num_edges == 1

    def test_self_loop_allowed(self):
        g = Graph()
        g.add_node("a")
        g.add_edge("a", "a")
        assert g.has_edge("a", "a")
        assert g.out_degree("a") == 1
        assert g.in_degree("a") == 1

    def test_add_edges_returns_new_count(self):
        g = Graph()
        g.add_nodes(["a", "b", "c"])
        assert g.add_edges([("a", "b"), ("a", "b"), ("b", "c")]) == 2

    def test_from_edges_with_attr_mapping(self):
        g = Graph.from_edges(
            [("a", "b")], nodes={"a": {"f": 1}, "b": {"f": 2}, "c": {"f": 3}}
        )
        assert g.num_nodes == 3
        assert g.get("c", "f") == 3
        assert g.has_edge("a", "b")

    def test_from_edges_creates_bare_nodes(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        assert g.num_nodes == 3
        assert g.attrs("a") == {}

    def test_from_edges_with_iterable_nodes(self):
        g = Graph.from_edges([("a", "b")], nodes=["a", "b", "isolated"])
        assert "isolated" in g
        assert g.out_degree("isolated") == 0

    def test_integer_node_ids(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert g.has_edge(1, 2)
        assert g.num_nodes == 3


class TestRemoval:
    def test_remove_edge(self, small: Graph):
        small.remove_edge("a", "b")
        assert not small.has_edge("a", "b")
        assert small.num_edges == 1

    def test_remove_missing_edge_raises(self, small: Graph):
        with pytest.raises(GraphError, match="no such edge"):
            small.remove_edge("a", "c")

    def test_remove_node_drops_incident_edges(self, small: Graph):
        small.remove_node("b")
        assert "b" not in small
        assert small.num_edges == 0
        assert list(small.successors("a")) == []

    def test_remove_missing_node_raises(self, small: Graph):
        with pytest.raises(GraphError, match="unknown node"):
            small.remove_node("zzz")

    def test_remove_node_with_self_loop(self):
        g = Graph()
        g.add_node("a")
        g.add_edge("a", "a")
        g.remove_node("a")
        assert g.num_edges == 0
        assert g.num_nodes == 0


class TestInspection:
    def test_contains(self, small: Graph):
        assert "a" in small
        assert "zzz" not in small

    def test_len(self, small: Graph):
        assert len(small) == 3

    def test_size_counts_nodes_plus_edges(self, small: Graph):
        assert small.size == 5

    def test_successors_and_predecessors(self, small: Graph):
        assert list(small.successors("a")) == ["b"]
        assert list(small.predecessors("c")) == ["b"]
        assert list(small.predecessors("a")) == []

    def test_degrees(self, small: Graph):
        assert small.out_degree("a") == 1
        assert small.in_degree("b") == 1
        assert small.out_degree("c") == 0

    def test_unknown_node_accessors_raise(self, small: Graph):
        for accessor in (
            small.successors,
            small.predecessors,
            small.out_degree,
            small.in_degree,
            small.attrs,
        ):
            with pytest.raises(GraphError):
                accessor("zzz")

    def test_get_with_default(self, small: Graph):
        assert small.get("a", "kind") == "x"
        assert small.get("a", "missing", 42) == 42

    def test_set_attribute(self, small: Graph):
        small.set("a", "kind", "z")
        assert small.get("a", "kind") == "z"

    def test_edges_iteration_order_is_insertion(self):
        g = Graph()
        g.add_nodes(["a", "b", "c"])
        g.add_edge("b", "c")
        g.add_edge("a", "b")
        assert list(g.edges()) == [("a", "b"), ("b", "c")] or list(g.edges()) == [
            ("b", "c"),
            ("a", "b"),
        ]
        # Precisely: grouped by source insertion order.
        assert list(g.edges()) == [("a", "b"), ("b", "c")]

    def test_repr_mentions_counts(self, small: Graph):
        assert "3 nodes" in repr(small)
        assert "2 edges" in repr(small)


class TestDerivation:
    def test_copy_is_independent(self, small: Graph):
        clone = small.copy()
        clone.add_node("d")
        clone.add_edge("c", "d")
        clone.set("a", "kind", "changed")
        assert "d" not in small
        assert small.get("a", "kind") == "x"

    def test_copy_equals_original(self, small: Graph):
        assert small.copy() == small

    def test_copy_rename(self, small: Graph):
        assert small.copy(name="other").name == "other"

    def test_subgraph_induced(self, small: Graph):
        sub = small.subgraph(["a", "b"])
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert sub.num_edges == 1

    def test_subgraph_unknown_node_raises(self, small: Graph):
        with pytest.raises(GraphError):
            small.subgraph(["a", "zzz"])

    def test_reversed_flips_edges(self, small: Graph):
        rev = small.reversed()
        assert rev.has_edge("b", "a")
        assert rev.has_edge("c", "b")
        assert not rev.has_edge("a", "b")
        assert rev.attrs("a") == small.attrs("a")

    def test_equality_considers_attrs(self):
        g1 = Graph()
        g1.add_node("a", x=1)
        g2 = Graph()
        g2.add_node("a", x=2)
        assert g1 != g2

    def test_equality_considers_edges(self):
        g1 = Graph.from_edges([("a", "b")])
        g2 = Graph.from_edges([("b", "a")])
        assert g1 != g2

    def test_graphs_are_unhashable(self, small: Graph):
        with pytest.raises(TypeError):
            hash(small)
