"""Render the experiment series from benchmark output.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json

    # assertion-style benchmarks write BENCH_<experiment>.json summaries:
    pytest benchmarks/bench_distance_oracle.py -s
    python benchmarks/report.py BENCH_E15.json            # one summary
    python benchmarks/report.py .                         # every BENCH_*.json

Prints, per experiment id (E4-E10 and the ablations), the series the
paper's evaluation section describes — runtime scaling, incremental-vs-
batch comparisons with crossovers, compression ratios and speed-ups — as
tables and ASCII charts, and renders the machine-readable
``BENCH_<experiment>.json`` summaries the assertion-style benchmarks emit
(the perf trajectory CI uploads as artifacts).  This completes deliverable
(d): the harness that regenerates the paper's reported rows from a
benchmark run.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path

from repro.viz.charts import ascii_bar_chart, comparison_chart


def load_benchmarks(path: str | Path) -> dict[str, list[dict]]:
    """Group benchmark entries by group name."""
    payload = json.loads(Path(path).read_text())
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in payload.get("benchmarks", []):
        groups[bench.get("group") or "ungrouped"].append(bench)
    return dict(groups)


def mean_ms(bench: dict) -> float:
    return bench["stats"]["mean"] * 1000.0


def _param(bench: dict, key: str, default=None):
    extra = bench.get("extra_info", {})
    if key in extra:
        return extra[key]
    return (bench.get("params") or {}).get(key, default)


def report_scaling(groups: dict, out) -> None:
    """E4: matcher runtime vs graph size, one chart per algorithm."""
    print("== E4: query evaluation cost vs graph size ==", file=out)
    for group, label in (
        ("E4-simulation", "graph simulation (quadratic)"),
        ("E4-bounded", "bounded simulation (cubic)"),
        ("E4-isomorphism", "subgraph isomorphism"),
    ):
        entries = groups.get(group, [])
        series = sorted(
            (
                (str(_param(bench, "size", bench["name"])), mean_ms(bench))
                for bench in entries
                if _param(bench, "size") is not None
            ),
            key=lambda pair: int(pair[0]),
        )
        if series:
            print(ascii_bar_chart(series, title=label), file=out)
            print(file=out)


def _crossover_pairs(groups: dict, incremental_group: str, batch_group: str):
    incremental = {
        _param(bench, "percent_changed"): mean_ms(bench)
        for bench in groups.get(incremental_group, [])
    }
    batch = {
        _param(bench, "percent_changed"): mean_ms(bench)
        for bench in groups.get(batch_group, [])
    }
    return [
        (f"{percent}%", incremental[percent], batch[percent])
        for percent in sorted(set(incremental) & set(batch), key=float)
    ]


def report_incremental(groups: dict, out) -> None:
    """E5/E6: incremental vs batch with the crossover visible."""
    for title, inc_group, batch_group in (
        ("E5: incremental vs batch (simulation)", "E5-incremental-sim", "E5-batch-sim"),
        ("E6: incremental vs batch (bounded simulation)",
         "E6-incremental-bounded", "E6-batch-bounded"),
    ):
        pairs = _crossover_pairs(groups, inc_group, batch_group)
        if not pairs:
            continue
        print(f"== {title} ==", file=out)
        print(comparison_chart(pairs, "incremental", "batch"), file=out)
        crossover = next(
            (label for label, left, right in pairs if left >= right), None
        )
        if crossover is None:
            print("crossover: beyond the tested range (incremental always wins)",
                  file=out)
        else:
            print(f"crossover: at or before ΔG = {crossover}", file=out)
        print(file=out)


def report_compression(groups: dict, out) -> None:
    """E7/E8/E9: ratios, query speed-up, maintenance."""
    builds = groups.get("E7-compress", [])
    if builds:
        print("== E7: compression ratio (size reduction) ==", file=out)
        series = [
            (
                f"{_param(bench, 'dataset')}/{_param(bench, 'method', '?')}"
                if _param(bench, "method") is not None
                else f"{_param(bench, 'dataset')}/{bench['name'].split('[')[-1].rstrip(']')}",
                float(_param(bench, "size_reduction_pct", 0.0)),
            )
            for bench in builds
        ]
        print(ascii_bar_chart(series, unit="%"), file=out)
        values = [value for _, value in series]
        print(f"average: {sum(values) / len(values):.1f}% (paper: 57%)", file=out)
        print(file=out)

    direct = {
        _param(bench, "dataset"): mean_ms(bench)
        for bench in groups.get("E8-direct", [])
    }
    compressed = {
        _param(bench, "dataset"): mean_ms(bench)
        for bench in groups.get("E8-compressed", [])
    }
    shared = sorted(set(direct) & set(compressed))
    if shared:
        print("== E8: query time, original vs compressed graph ==", file=out)
        pairs = [(dataset, compressed[dataset], direct[dataset]) for dataset in shared]
        print(comparison_chart(pairs, "compressed", "direct"), file=out)
        for dataset in shared:
            reduction = 100.0 * (1 - compressed[dataset] / direct[dataset])
            print(f"{dataset}: evaluation time reduced by {reduction:.0f}% (paper: ~70%)",
                  file=out)
        print(file=out)

    pairs = _crossover_pairs(groups, "E9-maintain", "E9-recompress")
    if pairs:
        print("== E9: maintain compression vs recompress ==", file=out)
        print(comparison_chart(pairs, "maintain", "recompress"), file=out)
        print(file=out)


def report_topk(groups: dict, out) -> None:
    entries = groups.get("E10-topk", [])
    if not entries:
        return
    print("== E10: top-K selection cost vs K ==", file=out)
    series = sorted(
        ((f"K={_param(bench, 'k')}", mean_ms(bench)) for bench in entries),
        key=lambda pair: int(pair[0][2:]),
    )
    print(ascii_bar_chart(series), file=out)
    print(file=out)


def report_ablations(groups: dict, out) -> None:
    printed = False
    for group, title in (
        ("ABL1-indexed-matcher", "ABL-1 indexed matcher"),
        ("ABL1-naive-matcher", "ABL-1 naive matcher"),
        ("ABL2-routes", "ABL-2 evaluation routes"),
        ("ABL4-reach-index", "ABL-4 reach-index workload"),
    ):
        entries = groups.get(group, [])
        if not entries:
            continue
        if not printed:
            print("== Ablations ==", file=out)
            printed = True
        series = [(bench["name"].split("[")[0].replace("test_", ""), mean_ms(bench))
                  for bench in entries]
        print(ascii_bar_chart(series, title=title), file=out)
        print(file=out)


def load_summaries(path: str | Path) -> list[dict]:
    """``BENCH_<experiment>.json`` payloads from a file or directory."""
    path = Path(path)
    files = sorted(path.glob("BENCH_*.json")) if path.is_dir() else [path]
    summaries = []
    for file in files:
        payload = json.loads(file.read_text())
        if isinstance(payload, dict) and "experiment" in payload:
            summaries.append(payload)
    return summaries


def _summary_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, list):
        return ", ".join(str(item) for item in value)
    return str(value)


def report_summaries(summaries: list[dict], out) -> None:
    """Render the perf trajectory the assertion-style benchmarks record.

    Each experiment section lists its measurement groups; speedup/ratio
    entries additionally feed a small comparison chart so the trajectory
    is scannable without reading raw numbers.
    """
    for payload in summaries:
        print(f"== {payload['experiment']}: recorded summary ==", file=out)
        speedups = []
        for group, values in sorted(payload.get("metrics", {}).items()):
            rendered = ", ".join(
                f"{key}={_summary_value(value)}"
                for key, value in sorted(values.items())
            )
            print(f"{group}: {rendered}", file=out)
            for key in ("speedup", "ratio"):
                if isinstance(values.get(key), (int, float)):
                    speedups.append((f"{group}/{key}", float(values[key])))
        if speedups:
            print(file=out)
            print(ascii_bar_chart(speedups, unit="x"), file=out)
        print(file=out)


def render_report(path: str | Path, out=None) -> None:
    """Render every experiment section found at ``path``.

    A pytest-benchmark JSON renders the classic experiment series; a
    ``BENCH_*.json`` summary (or a directory of them) renders the
    recorded perf trajectory.
    """
    out = out or sys.stdout
    path = Path(path)
    summaries = load_summaries(path)
    if summaries:
        report_summaries(summaries, out)
    if path.is_dir():
        return
    if summaries:
        return
    groups = load_benchmarks(path)
    report_scaling(groups, out)
    report_incremental(groups, out)
    report_compression(groups, out)
    report_topk(groups, out)
    report_ablations(groups, out)


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print(
            "usage: python benchmarks/report.py "
            "<benchmark.json | BENCH_*.json | directory>",
            file=sys.stderr,
        )
        return 2
    if not Path(args[0]).exists():
        print(f"no such file: {args[0]}", file=sys.stderr)
        return 2
    render_report(args[0])
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
