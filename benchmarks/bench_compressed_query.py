"""E8 — "reduces query evaluation time by 70%" on compressed graphs.

Times bounded-simulation evaluation on the original graph versus on the
quotient (including the linear decompression back to original nodes), and
verifies both routes return identical relations.

Expected shape: evaluating on the quotient is several times faster than on
the original graph — i.e. evaluation time drops by a large fraction, the
paper's 70%-class effect.
"""

import time

import pytest

from benchmarks.conftest import cached_collab, cached_twitter
from repro.compression.compress import compress
from repro.compression.decompress import decompress_relation
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder

_COMPRESSED_CACHE = {}


def influencer_pattern():
    return (
        PatternBuilder("influencer")
        .node("SA", field="SA", output=True)
        .node("SD", field="SD")
        .node("ST", field="ST")
        .edge("SA", "SD", 2)
        .edge("SA", "ST", 2)
        .edge("SD", "ST", 2)
        .build(require_output=True)
    )


def _setup(dataset):
    if dataset not in _COMPRESSED_CACHE:
        graph = cached_twitter(3000) if dataset == "twitter" else cached_collab(1500)
        _COMPRESSED_CACHE[dataset] = (graph, compress(graph, attrs=("field",)))
    return _COMPRESSED_CACHE[dataset]


@pytest.mark.parametrize("dataset", ("twitter", "collab"))
@pytest.mark.benchmark(group="E8-direct")
def test_query_on_original(benchmark, dataset):
    graph, _compressed = _setup(dataset)
    pattern = influencer_pattern()
    result = benchmark(lambda: match_bounded(graph, pattern))
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["match_pairs"] = result.relation.num_pairs


@pytest.mark.parametrize("dataset", ("twitter", "collab"))
@pytest.mark.benchmark(group="E8-compressed")
def test_query_on_quotient_with_decompression(benchmark, dataset):
    graph, compressed = _setup(dataset)
    pattern = influencer_pattern()

    def run():
        quotient_relation = match_bounded(compressed.quotient, pattern).relation
        return decompress_relation(quotient_relation, compressed)

    recovered = benchmark(run)
    benchmark.extra_info["dataset"] = dataset
    assert recovered == match_bounded(graph, pattern).relation


@pytest.mark.benchmark(group="E8-shape")
def test_shape_compressed_evaluation_is_much_faster(benchmark):
    """Shape check vs the paper's 70% time reduction (Twitter dataset)."""
    graph, compressed = _setup("twitter")
    pattern = influencer_pattern()

    def measure():
        started = time.perf_counter()
        direct = match_bounded(graph, pattern).relation
        direct_seconds = time.perf_counter() - started
        started = time.perf_counter()
        quotient_relation = match_bounded(compressed.quotient, pattern).relation
        recovered = decompress_relation(quotient_relation, compressed)
        compressed_seconds = time.perf_counter() - started
        assert recovered == direct
        return direct_seconds, compressed_seconds

    direct_seconds, compressed_seconds = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    reduction = 1.0 - compressed_seconds / direct_seconds
    benchmark.extra_info["direct_ms"] = round(direct_seconds * 1e3, 2)
    benchmark.extra_info["compressed_ms"] = round(compressed_seconds * 1e3, 2)
    benchmark.extra_info["time_reduction_pct"] = round(reduction * 100, 1)
    assert reduction > 0.4  # a large cut; the paper reports ~70%
