"""E19 — what durability costs: WAL overhead and crash-recovery time.

The write-ahead changelog (PR 10) makes every acknowledged publish
durable: the batch is CRC-framed and appended *before* it is applied, so
a crash at any instruction recovers to a batch-atomic state.  Durability
is only free to claim, not to run — this experiment measures the bill
and bounds it:

* **publish overhead < 25 %** — the same ``REPRO_E19_BATCHES`` update
  batches published through a bare registry vs a WAL-backed one at the
  default ``fsync=batch`` policy.  The epoch rebuild dominates publish
  cost, so the WAL's JSON framing + amortized fsync must stay a minor
  line item.  ``fsync=always`` and ``fsync=none`` are recorded alongside
  (unasserted) as the decision-table data for docs/performance.md.
* **recovery < 5 s** — a process that vanished without checkpointing
  past its baseline replays the full WAL suffix (all batches) at
  startup; replay skips per-batch epoch builds, so it runs well ahead of
  live publish throughput.
* **recovered state is exact** — the replayed graph must byte-match the
  canonical serialized form of the never-crashed twin.

Results land in ``BENCH_E19.json`` for the perf trajectory.
"""

import os
import time

import pytest

from benchmarks.conftest import summary_recorder
from repro.engine.storage import GraphStore
from repro.graph.generators import twitter_like_graph
from repro.incremental.updates import EdgeInsertion, NodeInsertion
from repro.server.registry import SnapshotRegistry
from repro.server.wal import Checkpointer, WriteAheadLog
from repro.testing.chaos import canonical_form

NODES = int(os.environ.get("REPRO_E19_NODES", "500"))
BATCHES = int(os.environ.get("REPRO_E19_BATCHES", "1000"))
# The 25 % claim is about the default scale, where the epoch rebuild is
# the real work; a shrunken CI smoke makes the rebuild nearly free and
# the *ratio* meaningless, so the smoke raises the ceiling via env.
OVERHEAD_CEILING = float(os.environ.get("REPRO_E19_OVERHEAD_CEILING", "0.25"))
RECOVERY_CEILING_S = float(os.environ.get("REPRO_E19_RECOVERY_CEILING", "5.0"))

summary = summary_recorder(
    "E19",
    nodes=NODES,
    batches=BATCHES,
    overhead_ceiling=OVERHEAD_CEILING,
    recovery_ceiling_s=RECOVERY_CEILING_S,
)

GRAPH = "e19"


def update_batches(count):
    """``count`` small publish batches: one new node wired to the seed."""
    return [
        [
            NodeInsertion.with_attrs(f"b{index}", kind="update", round=index),
            EdgeInsertion("u0", f"b{index}"),
        ]
        for index in range(count)
    ]


def publish_all(registry, batches):
    start = time.perf_counter()
    for batch in batches:
        registry.publish(GRAPH, batch)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def graph():
    return twitter_like_graph(NODES, seed=0)


def wal_stack(root, fsync):
    """A WAL-backed registry whose only checkpoint is the baseline.

    ``every_batches`` is effectively infinite so the whole run stays in
    the WAL suffix — the worst (longest) recovery the scenario allows.
    """
    store = GraphStore(root / "store")
    wal = WriteAheadLog(root / "wal", fsync=fsync)
    registry = SnapshotRegistry(store=store, wal=wal)
    checkpointer = Checkpointer(
        registry, wal, store, every_batches=10**9, background=False
    )
    registry.attach_checkpointer(checkpointer)
    return registry, wal


class TestWalOverheadAndRecovery:
    def test_durability_costs_stay_bounded(self, graph, tmp_path, summary):
        batches = update_batches(BATCHES)

        # Baseline: the registry as PR 9 shipped it — no WAL, no store.
        bare = SnapshotRegistry()
        bare.register(GRAPH, graph.copy(name=GRAPH))
        bare_seconds = publish_all(bare, batches)
        bare_qps = BATCHES / bare_seconds
        print(f"[E19] wal-off        : {bare_qps:8.1f} batches/s")

        # The asserted configuration: fsync=batch (the serve default).
        registry, wal = wal_stack(tmp_path / "batch", fsync="batch")
        registry.register(GRAPH, graph.copy(name=GRAPH))
        wal_seconds = publish_all(registry, batches)
        wal_qps = BATCHES / wal_seconds
        overhead = (wal_seconds - bare_seconds) / bare_seconds
        live_form = canonical_form(registry.current_epoch(GRAPH).graph)
        print(
            f"[E19] wal fsync=batch: {wal_qps:8.1f} batches/s "
            f"(overhead {overhead * 100:+.1f}%)"
        )
        summary.record(
            "publish_throughput",
            wal_off_batches_per_s=round(bare_qps, 1),
            wal_batch_batches_per_s=round(wal_qps, 1),
            overhead_fraction=round(overhead, 4),
            wal_stats=wal.stats(),
        )
        assert overhead < OVERHEAD_CEILING, (
            f"WAL overhead {overhead * 100:.1f}% exceeds the "
            f"{OVERHEAD_CEILING * 100:.0f}% ceiling at fsync=batch"
        )

        # Decision-table data points (recorded, not asserted: `always`
        # is at the mercy of the host's fsync latency).
        for policy in ("always", "none"):
            other, other_wal = wal_stack(tmp_path / policy, fsync=policy)
            other.register(GRAPH, graph.copy(name=GRAPH))
            seconds = publish_all(other, batches)
            qps = BATCHES / seconds
            print(f"[E19] wal fsync={policy:6s}: {qps:8.1f} batches/s")
            summary.record(
                f"publish_fsync_{policy}",
                batches_per_s=round(qps, 1),
                fsyncs=other_wal.stats()["fsyncs"],
            )
            other_wal.close()

        # Crash: the fsync=batch process vanishes (no close, no seal, no
        # checkpoint past the baseline) — recovery replays every batch.
        start = time.perf_counter()
        revived_store = GraphStore(tmp_path / "batch" / "store")
        revived_wal = WriteAheadLog(tmp_path / "batch" / "wal", fsync="batch")
        revived = SnapshotRegistry(store=revived_store, wal=revived_wal)
        report = revived.recover()
        recovery_seconds = time.perf_counter() - start
        replayed = report[GRAPH]["replayed"]
        print(
            f"[E19] recovery       : {replayed} batches replayed in "
            f"{recovery_seconds:.2f}s"
        )
        summary.record(
            "recovery",
            replayed=replayed,
            seconds=round(recovery_seconds, 3),
            batches_per_s=round(replayed / recovery_seconds, 1),
        )
        assert replayed == BATCHES
        assert recovery_seconds < RECOVERY_CEILING_S, (
            f"recovering {BATCHES} batches took {recovery_seconds:.2f}s "
            f"(ceiling {RECOVERY_CEILING_S}s)"
        )
        assert canonical_form(revived.current_epoch(GRAPH).graph) == live_form
        revived_wal.close()
