"""E15 — landmark distance oracle vs frozen BFS enumeration.

Heavy, diverse query workloads repeat deep bounded-reachability tests over
a graph that rarely changes; the oracle amortises them into per-pair label
merges.  Four claims on a seeded 50k-node ``twitter_like_graph`` (the
hub-structured workload the paper's Twitter fraction stands in for — and
the regime hub labeling exists for):

* **selective deep-bound workload** (small candidate sets, ``'*'`` and
  depth >= 5 bounds): warm-oracle engine evaluation runs >= 2x the PR-4
  frozen BFS path, with byte-identical match results.  Asserted on any
  host: the win is algorithmic (candidate x candidate label merges versus
  materialising each source's reach ball), not core-count-dependent.
* **kernel level**: oracle-routed ``frozen_successor_rows`` >= 2x the
  enumeration kernels on the same workload, identical rows.
* **broad-candidate fallback**: with low-selectivity predicates the cost
  model routes every edge back to the enumeration kernels (asserted from
  the recorded kernel log) and oracle-enabled evaluation regresses < 10%
  against the plain frozen path (best-of-three wall clocks).
* **label build cost** is reported (one-off, amortised across the query
  workload) together with label-size statistics, and every number lands
  in ``BENCH_E15.json`` for the perf trajectory.

The cost model's inputs are *measured* label sizes, so on hub-poor graphs
(e.g. the sparse ``collaboration_graph``) the oracle correctly loses the
cost race and evaluation stays on the enumeration kernels — that fallback
is exactly what the broad-workload claim exercises.
"""

import time

import pytest

from benchmarks.conftest import cached_twitter, summary_recorder
from repro.engine.engine import QueryEngine
from repro.engine.planner import KERNEL_ORACLE
from repro.graph.frozen import FrozenGraph
from repro.graph.oracle import DistanceOracle
from repro.matching.bounded import frozen_successor_rows
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder

SIZE = 50_000

summary = summary_recorder("E15")


@pytest.fixture(scope="module")
def graph():
    return cached_twitter(SIZE)


@pytest.fixture(scope="module")
def frozen(graph):
    return FrozenGraph.freeze(graph)


@pytest.fixture(scope="module")
def oracle(graph, frozen, summary):
    """The warm oracle, with its one-off build cost on the record."""
    start = time.perf_counter()
    built = DistanceOracle.build(frozen)
    seconds = time.perf_counter() - start
    stats = built.stats()
    print(
        f"\n[E15/build] labels for {SIZE} nodes / {graph.num_edges} edges: "
        f"{seconds:.2f}s ({stats['label_entries_out']} fwd + "
        f"{stats['label_entries_in']} rev entries, avg "
        f"{stats['avg_out_label']:.1f}/{stats['avg_in_label']:.1f} per node)"
    )
    summary.record(
        "build",
        seconds=seconds,
        label_entries_out=stats["label_entries_out"],
        label_entries_in=stats["label_entries_in"],
        avg_out_label=stats["avg_out_label"],
        avg_in_label=stats["avg_in_label"],
        reach_entries=stats["reach_entries"],
    )
    return built


def selective_pattern():
    """Senior architects reaching (``'*'``) and mentoring (<= 6 hops)
    seasoned specialists: small candidate sets, deep bounds — the regime
    the ISSUE's acceptance criterion names."""
    return (
        PatternBuilder("deep-selective")
        .node("SA", "experience >= 15", field="SA", output=True)
        .node("ST", "experience >= 13", field="ST")
        .node("SD", "experience >= 14", field="SD")
        .edge("SA", "ST", None)
        .edge("SA", "SD", 6)
        .build(require_output=True)
    )


def broad_pattern():
    """The same shape with low-selectivity predicates: thousands of
    candidates per node, where enumeration wins the cost race.  Bounds 3
    and 2 keep the *timed* fallback runs in seconds (a broad deep-bound
    evaluation materialises tens of millions of row entries on either
    path — identical cost both sides, minutes of wall clock; its routing
    is asserted separately without timing it)."""
    return (
        PatternBuilder("shallow-broad")
        .node("SA", "experience >= 1", field="SA", output=True)
        .node("ST", "experience >= 2", field="ST")
        .node("SD", "experience >= 2", field="SD")
        .edge("SA", "ST", 3)
        .edge("SA", "SD", 2)
        .build(require_output=True)
    )


def best_of(runs, fn):
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, result = elapsed, value
    return best, result


def test_kernel_speedup(graph, frozen, oracle, summary):
    """Successor rows: oracle-pairwise >= 2x enumeration, identical rows."""
    pattern = selective_pattern()
    candidates = simulation_candidates(graph, pattern)
    ids = frozen.ids()
    candidate_ids = {
        u: frozenset(ids[v] for v in vs) for u, vs in candidates.items()
    }
    spec = {"SA": tuple(pattern.out_edges("SA"))}

    t_enum, enum_rows = best_of(
        2, lambda: frozen_successor_rows(frozen, spec, candidate_ids)
    )
    log: dict = {}
    t_oracle, oracle_rows = best_of(
        2,
        lambda: frozen_successor_rows(
            frozen, spec, candidate_ids, oracle=oracle, kernel_log=log
        ),
    )
    assert oracle_rows == enum_rows  # identity, always
    assert all(route.kernel == KERNEL_ORACLE for route in log.values()), (
        "cost model must route every selective deep edge to the oracle: "
        f"{ {e: r.kernel for e, r in log.items()} }"
    )
    speedup = t_enum / t_oracle
    print(
        f"\n[E15/kernel] {len(candidate_ids['SA'])} sources x "
        f"({len(candidate_ids['ST'])} + {len(candidate_ids['SD'])}) children "
        f"on {SIZE} nodes: enumeration {t_enum:.3f}s, oracle {t_oracle:.3f}s "
        f"-> {speedup:.1f}x"
    )
    summary.record(
        "kernel",
        seconds_enumeration=t_enum,
        seconds_oracle=t_oracle,
        speedup=speedup,
        sources=len(candidate_ids["SA"]),
    )
    assert speedup >= 2.0, (
        f"oracle-pairwise rows must be >= 2x the enumeration kernels, "
        f"got {speedup:.2f}x"
    )


def test_selective_evaluation_speedup(graph, summary):
    """End-to-end engine evaluation: warm oracle >= 2x frozen BFS path."""
    pattern = selective_pattern()

    plain = QueryEngine()
    plain.register_graph("g", graph)
    accelerated = QueryEngine()
    accelerated.register_graph("g", graph)
    accelerated.enable_oracle("g")
    # Warm both engines: snapshots (and labels) build once, outside the
    # timed region — the amortised regime the oracle exists for.
    kwargs = dict(use_cache=False, cache_result=False)
    baseline = plain.evaluate("g", pattern, **kwargs)
    warmup = accelerated.evaluate("g", pattern, **kwargs)
    assert warmup.relation == baseline.relation
    assert warmup.relation.to_dict() == baseline.relation.to_dict()
    assert KERNEL_ORACLE in warmup.stats["kernels"].values(), warmup.stats

    t_plain, plain_result = best_of(3, lambda: plain.evaluate("g", pattern, **kwargs))
    t_oracle, oracle_result = best_of(
        3, lambda: accelerated.evaluate("g", pattern, **kwargs)
    )
    assert oracle_result.relation == plain_result.relation  # identity, always
    speedup = t_plain / t_oracle
    print(
        f"\n[E15/evaluation] selective deep query on {SIZE} nodes "
        f"({plain_result.relation.num_pairs} pairs): frozen BFS {t_plain:.3f}s, "
        f"oracle-routed {t_oracle:.3f}s -> {speedup:.1f}x "
        f"(label build, paid once: "
        f"{accelerated.oracle_stats('g')['build_seconds']:.2f}s)"
    )
    summary.record(
        "selective_evaluation",
        seconds_frozen_bfs=t_plain,
        seconds_oracle=t_oracle,
        speedup=speedup,
        pairs=plain_result.relation.num_pairs,
    )
    assert speedup >= 2.0, (
        f"oracle-routed evaluation must be >= 2x the frozen BFS path on the "
        f"selective deep-bound workload, got {speedup:.2f}x"
    )


def test_broad_workload_falls_back(graph, summary):
    """Broad candidates: every edge routes to enumeration, regression < 10%."""
    pattern = broad_pattern()

    plain = QueryEngine()
    plain.register_graph("g", graph)
    accelerated = QueryEngine()
    accelerated.register_graph("g", graph)
    accelerated.enable_oracle("g")
    kwargs = dict(use_cache=False, cache_result=False)
    baseline = plain.evaluate("g", pattern, **kwargs)
    warmup = accelerated.evaluate("g", pattern, **kwargs)
    assert warmup.relation == baseline.relation
    assert warmup.relation.to_dict() == baseline.relation.to_dict()
    kernels = warmup.stats["kernels"]
    assert kernels and all(k != KERNEL_ORACLE for k in kernels.values()), (
        f"broad-candidate edges must fall back to enumeration kernels: {kernels}"
    )

    t_plain, plain_result = best_of(3, lambda: plain.evaluate("g", pattern, **kwargs))
    t_oracle, oracle_result = best_of(
        3, lambda: accelerated.evaluate("g", pattern, **kwargs)
    )
    assert oracle_result.relation == plain_result.relation
    ratio = t_oracle / t_plain
    print(
        f"\n[E15/broad] broad query on {SIZE} nodes "
        f"({plain_result.relation.num_pairs} pairs): frozen BFS {t_plain:.2f}s, "
        f"oracle-enabled {t_oracle:.2f}s -> {ratio:.2f}x (kernels: "
        f"{sorted(set(kernels.values()))})"
    )
    summary.record(
        "broad_fallback",
        seconds_frozen_bfs=t_plain,
        seconds_oracle_enabled=t_oracle,
        ratio=ratio,
        kernels=sorted(set(kernels.values())),
    )
    assert ratio <= 1.10, (
        f"oracle-enabled evaluation must not regress > 10% on broad "
        f"workloads (cost-model fallback), got {ratio:.2f}x"
    )


def test_deep_broad_routing_stays_on_bitset(graph, frozen, oracle):
    """Deep bounds over broad candidates route to the bitset kernel.

    Routing only — the evaluation itself materialises ~10^7 row entries
    on *either* kernel (identical work, minutes of wall clock), so timing
    it would measure row decoding, not the decision this suite guards.
    """
    pattern = (
        PatternBuilder("deep-broad")
        .node("SA", "experience >= 1", field="SA", output=True)
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "ST", None)
        .build(require_output=True)
    )
    candidates = simulation_candidates(graph, pattern)
    from repro.engine.planner import route_edge
    from repro.matching.bounded import FROZEN_BULK_DEPTH

    route = route_edge(
        ("SA", "ST"),
        None,
        len(candidates["SA"]),
        len(candidates["ST"]),
        graph.num_nodes,
        graph.num_edges,
        oracle.profile(),
        bulk_depth=FROZEN_BULK_DEPTH,
    )
    print(f"\n[E15/routing] {route.describe()}")
    assert route.kernel == "bitset", route.describe()
