"""E6 — incremental vs batch evaluation, bounded simulation.

The paper: incremental beats batch "up to ... 10% for bounded simulation"
— a smaller crossover than the simulation case, because each unit update
triggers bounded-BFS work over its neighbourhood rather than one counter
touch.

Expected shape: incremental wins clearly at 1%, the margin narrows faster
than in E5, and batch recomputation overtakes at a smaller ΔG.
"""

import time

import pytest

from benchmarks.conftest import cached_collab, team_pattern
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.updates import random_updates
from repro.matching.bounded import match_bounded

GRAPH_NODES = 800
PERCENTS = (1, 5, 10, 20)


def _make_batch(graph, percent, seed=321):
    count = max(1, graph.num_edges * percent // 100)
    return random_updates(graph, count, seed=seed)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.benchmark(group="E6-incremental-bounded")
def test_incremental_bounded(benchmark, percent):
    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern()

    def setup():
        graph = base.copy()
        maintainer = IncrementalBoundedSimulation(graph, pattern)
        batch = _make_batch(graph, percent)
        return (maintainer, batch), {}

    benchmark.pedantic(
        lambda maintainer, batch: maintainer.apply_batch(batch),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["percent_changed"] = percent
    benchmark.extra_info["updates"] = max(1, base.num_edges * percent // 100)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.benchmark(group="E6-batch-bounded")
def test_batch_recompute_bounded(benchmark, percent):
    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern()

    def setup():
        graph = base.copy()
        for update in _make_batch(graph, percent):
            update.apply(graph)
        return (graph,), {}

    benchmark.pedantic(
        lambda graph: match_bounded(graph, pattern),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["percent_changed"] = percent


@pytest.mark.benchmark(group="E6-shape")
def test_shape_crossover_is_tighter_than_simulation(benchmark):
    """Shape check: incremental wins at 1% and the incremental/batch time
    ratio degrades as ΔG grows (the crossover mechanism)."""
    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern()

    def ratio_for(count: int) -> float:
        graph = base.copy()
        maintainer = IncrementalBoundedSimulation(graph, pattern)
        batch = random_updates(graph, count, seed=321)
        started = time.perf_counter()
        maintainer.apply_batch(batch)
        incremental_seconds = time.perf_counter() - started

        fresh = base.copy()
        for update in batch:
            update.apply(fresh)
        started = time.perf_counter()
        recomputed = match_bounded(fresh, pattern)
        batch_seconds = time.perf_counter() - started
        assert maintainer.relation() == recomputed.relation
        return incremental_seconds / batch_seconds

    def measure():
        unit = ratio_for(1)  # the paper's "unit update" case
        large = ratio_for(max(1, base.num_edges * 20 // 100))
        return unit, large

    unit_ratio, large_ratio = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info["ratio_unit_update"] = round(unit_ratio, 3)
    benchmark.extra_info["ratio_at_20pct"] = round(large_ratio, 3)
    assert unit_ratio < 1.0          # a unit update clearly beats recomputation
    assert large_ratio > unit_ratio  # the advantage erodes with ΔG
