"""E5 — incremental vs batch evaluation, plain simulation.

The paper: "our incremental module performs significantly better than their
batch counterparts, when data graphs are changed up to 30% for simulation".

This bench varies the batch size ΔG as a percentage of |E| and times
(a) maintaining the match through the incremental module versus
(b) applying the updates and recomputing from scratch.

Expected shape: incremental wins comfortably at small ΔG; the advantage
shrinks as ΔG grows and inverts somewhere past tens of percent.
"""

import time

import pytest

from benchmarks.conftest import cached_collab, unit_pattern
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import random_updates
from repro.matching.simulation import match_simulation

GRAPH_NODES = 1500
PERCENTS = (1, 5, 10, 30, 50)


def _make_batch(graph, percent, seed=123):
    count = max(1, graph.num_edges * percent // 100)
    return random_updates(graph, count, seed=seed)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.benchmark(group="E5-incremental-sim")
def test_incremental_simulation(benchmark, percent):
    base = cached_collab(GRAPH_NODES)
    pattern = unit_pattern()

    def setup():
        graph = base.copy()
        maintainer = IncrementalSimulation(graph, pattern)
        batch = _make_batch(graph, percent)
        return (maintainer, batch), {}

    def run(maintainer, batch):
        maintainer.apply_batch(batch)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    benchmark.extra_info["percent_changed"] = percent
    benchmark.extra_info["updates"] = max(1, base.num_edges * percent // 100)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.benchmark(group="E5-batch-sim")
def test_batch_recompute_simulation(benchmark, percent):
    base = cached_collab(GRAPH_NODES)
    pattern = unit_pattern()

    def setup():
        graph = base.copy()
        for update in _make_batch(graph, percent):
            update.apply(graph)
        return (graph,), {}

    benchmark.pedantic(
        lambda graph: match_simulation(graph, pattern),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["percent_changed"] = percent


@pytest.mark.benchmark(group="E5-shape")
def test_shape_incremental_wins_at_small_delta(benchmark):
    """Shape check: at ΔG = 1% the incremental module beats recomputation,
    and the two agree on the final relation."""
    base = cached_collab(GRAPH_NODES)
    pattern = unit_pattern()

    def measure():
        graph = base.copy()
        maintainer = IncrementalSimulation(graph, pattern)
        batch = _make_batch(graph, 1)
        started = time.perf_counter()
        maintainer.apply_batch(batch)
        incremental_seconds = time.perf_counter() - started

        fresh = base.copy()
        for update in batch:
            update.apply(fresh)
        started = time.perf_counter()
        recomputed = match_simulation(fresh, pattern)
        batch_seconds = time.perf_counter() - started
        assert maintainer.relation() == recomputed.relation
        return incremental_seconds, batch_seconds

    incremental_seconds, batch_seconds = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    benchmark.extra_info["incremental_seconds"] = round(incremental_seconds, 5)
    benchmark.extra_info["batch_seconds"] = round(batch_seconds, 5)
    assert incremental_seconds < batch_seconds
