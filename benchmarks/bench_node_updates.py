"""E11 (extension) — node-level update maintenance vs recomputation.

The paper's ΔG covers edge updates only; this repository extends the
incremental module to attribute changes and node insertions/deletions
(DESIGN.md §4b).  This bench shows the extension preserves the E5/E6
economics: small node-level changes are far cheaper to maintain than to
recompute, with attribute flips (pure candidacy changes) cheapest of all.
"""

import pytest

from benchmarks.conftest import cached_collab, team_pattern
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.updates import AttributeUpdate, EdgeInsertion, NodeInsertion
from repro.matching.bounded import match_bounded

GRAPH_NODES = 800


def _attribute_flips(graph, count, seed=11):
    import random

    rng = random.Random(seed)
    nodes = list(graph.nodes())
    return [
        AttributeUpdate(rng.choice(nodes), "experience", rng.randint(1, 12))
        for _ in range(count)
    ]


@pytest.mark.parametrize("count", (1, 10, 50))
@pytest.mark.benchmark(group="E11-attr-incremental")
def test_attribute_updates_incremental(benchmark, count):
    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern(senior=4)

    def setup():
        graph = base.copy()
        maintainer = IncrementalBoundedSimulation(graph, pattern)
        return (maintainer, _attribute_flips(graph, count)), {}

    benchmark.pedantic(
        lambda maintainer, batch: maintainer.apply_batch(batch),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["updates"] = count


@pytest.mark.parametrize("count", (1, 10, 50))
@pytest.mark.benchmark(group="E11-attr-batch")
def test_attribute_updates_recompute(benchmark, count):
    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern(senior=4)

    def setup():
        graph = base.copy()
        for update in _attribute_flips(graph, count):
            update.apply(graph)
        return (graph,), {}

    benchmark.pedantic(
        lambda graph: match_bounded(graph, pattern),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["updates"] = count


@pytest.mark.benchmark(group="E11-hire")
def test_hire_scenario_incremental(benchmark):
    """The graph-editor scenario: hire one person and wire three edges."""
    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern(senior=4)

    def setup():
        graph = base.copy()
        maintainer = IncrementalBoundedSimulation(graph, pattern)
        nodes = list(graph.nodes())
        batch = [
            NodeInsertion.with_attrs(
                "hire", field="SA", specialty="system architect", experience=9
            ),
            EdgeInsertion("hire", nodes[10]),
            EdgeInsertion("hire", nodes[20]),
            EdgeInsertion("hire", nodes[30]),
        ]
        return (maintainer, batch), {}

    benchmark.pedantic(
        lambda maintainer, batch: maintainer.apply_batch(batch),
        setup=setup, rounds=5, iterations=1,
    )


@pytest.mark.benchmark(group="E11-shape")
def test_shape_attribute_maintenance_beats_recompute(benchmark):
    import time

    base = cached_collab(GRAPH_NODES)
    pattern = team_pattern(senior=4)

    def measure():
        graph = base.copy()
        maintainer = IncrementalBoundedSimulation(graph, pattern)
        batch = _attribute_flips(graph, 10)
        started = time.perf_counter()
        maintainer.apply_batch(batch)
        incremental_seconds = time.perf_counter() - started

        fresh = base.copy()
        for update in batch:
            update.apply(fresh)
        started = time.perf_counter()
        recomputed = match_bounded(fresh, pattern)
        recompute_seconds = time.perf_counter() - started
        assert maintainer.relation() == recomputed.relation
        return incremental_seconds, recompute_seconds

    incremental_seconds, recompute_seconds = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    benchmark.extra_info["incremental_ms"] = round(incremental_seconds * 1e3, 2)
    benchmark.extra_info["recompute_ms"] = round(recompute_seconds * 1e3, 2)
    assert incremental_seconds < recompute_seconds