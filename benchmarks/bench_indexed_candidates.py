"""E11 — indexed candidate generation and batched query evaluation.

Three comparisons on generator graphs:

* **scan vs. index** — :func:`simulation_candidates` re-evaluates every
  pattern predicate on every node; :func:`candidates_from_index` answers
  equality-shaped predicates from attribute postings and verifies range
  conjuncts only inside the posting supersets.  On a 10k-node collaboration
  graph the indexed path must win (asserted).
* **sequential vs. batch** — 20 hiring queries drawn from a small predicate
  vocabulary, evaluated one ``evaluate()`` at a time vs. one
  ``evaluate_many()`` that computes each distinct predicate's candidates
  once.
* **end-to-end** — full bounded-simulation matching with and without the
  attribute index, to show candidate generation's share of total cost.

Expected shape: index > scan for candidate generation (~4x at 10k nodes);
batch > sequential for 20 *distinct* predicate-sharing queries (~1.15x
wall-clock — the cubic refinement each query still pays dominates, while
predicate evaluations drop by the sharing factor, asserted in
tests/test_batch_eval.py; batches with *repeated* queries win much more,
since evaluate_many also dedups whole queries); end-to-end matching wins
modestly (~1.2x) since refinement dominates once candidates are cheap.
"""

import time

import pytest

from benchmarks.conftest import cached_collab, summary_recorder, team_pattern
from repro.engine.engine import QueryEngine
from repro.graph.index import AttributeIndex, candidates_from_index
from repro.matching.bounded import match_bounded
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder

SIZE = 10_000

summary = summary_recorder("E11")


def _warm_index(graph) -> AttributeIndex:
    index = AttributeIndex(graph)
    index.lookup("field", "SA")  # force the lazy build outside the timer
    return index


def _query_mix(count: int = 20):
    """Hiring queries over a small shared predicate vocabulary.

    Every pattern is structurally distinct (seniority cycles through 3
    thresholds, the four edge bounds enumerate bit patterns of ``i``), so
    the batch speedup measures *shared candidate generation*, not the
    whole-query dedup evaluate_many also performs for repeated patterns.
    """
    patterns = []
    for i in range(count):
        senior = 4 + (i % 3)
        b1, b2, b3, b4 = (1 + ((i >> shift) & 1) for shift in range(4))
        patterns.append(
            PatternBuilder(f"team-{i}")
            .node("SA", f"experience >= {senior}", field="SA", output=True)
            .node("SD", "experience >= 2", field="SD")
            .node("BA", "experience >= 2", field="BA")
            .node("ST", "experience >= 2", field="ST")
            .edge("SA", "SD", b1)
            .edge("SA", "BA", b2)
            .edge("SD", "ST", b3)
            .edge("BA", "ST", b4)
            .build(require_output=True)
        )
    assert len({p.canonical_key() for p in patterns}) == count
    return patterns


@pytest.mark.benchmark(group="E11-candidates")
def test_scan_candidates(benchmark):
    graph = cached_collab(SIZE)
    pattern = team_pattern()
    candidates = benchmark(lambda: simulation_candidates(graph, pattern))
    benchmark.extra_info["graph_size"] = graph.size
    benchmark.extra_info["candidates"] = sum(len(v) for v in candidates.values())


@pytest.mark.benchmark(group="E11-candidates")
def test_indexed_candidates(benchmark):
    graph = cached_collab(SIZE)
    pattern = team_pattern()
    index = _warm_index(graph)
    candidates = benchmark(lambda: candidates_from_index(graph, pattern, index))
    benchmark.extra_info["graph_size"] = graph.size
    benchmark.extra_info["candidates"] = sum(len(v) for v in candidates.values())
    benchmark.extra_info["index_stats"] = index.stats()


@pytest.mark.benchmark(group="E11-candidates")
def test_shape_index_beats_scan_at_10k(benchmark, summary):
    """Acceptance criterion: indexed candidate generation beats the
    full-node scan on a 10k-node generator graph."""
    graph = cached_collab(SIZE)
    pattern = team_pattern()
    index = _warm_index(graph)

    def measure():
        # Interleaved min-of-3: robust to a noisy-neighbor stall hitting one
        # measurement on a shared CI runner.
        scan_times, index_times = [], []
        for _ in range(3):
            started = time.perf_counter()
            scanned = simulation_candidates(graph, pattern)
            scan_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            indexed = candidates_from_index(graph, pattern, index)
            index_times.append(time.perf_counter() - started)
            assert indexed == scanned  # same answer, different cost
        return min(scan_times), min(index_times)

    scan_seconds, index_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["scan_seconds"] = round(scan_seconds, 5)
    benchmark.extra_info["index_seconds"] = round(index_seconds, 5)
    benchmark.extra_info["speedup"] = round(scan_seconds / index_seconds, 1)
    summary.record(
        "indexed_candidates",
        seconds_scan=scan_seconds,
        seconds_index=index_seconds,
        speedup=scan_seconds / index_seconds,
    )
    assert index_seconds < scan_seconds


@pytest.mark.benchmark(group="E11-batch")
def test_sequential_twenty_queries(benchmark):
    graph = cached_collab(SIZE)
    patterns = _query_mix(20)

    def sequential():
        engine = QueryEngine()
        engine.register_graph("g", graph)
        return [
            engine.evaluate("g", p, use_cache=False, cache_result=False)
            for p in patterns
        ]

    results = benchmark(sequential)
    benchmark.extra_info["total_pairs"] = sum(r.relation.num_pairs for r in results)


@pytest.mark.benchmark(group="E11-batch")
def test_batched_twenty_queries(benchmark):
    graph = cached_collab(SIZE)
    patterns = _query_mix(20)

    def batched():
        engine = QueryEngine()
        engine.register_graph("g", graph)
        return engine.evaluate_many("g", patterns, use_cache=False, cache_result=False)

    results = benchmark(batched)
    benchmark.extra_info["total_pairs"] = sum(r.relation.num_pairs for r in results)
    benchmark.extra_info["distinct_predicates"] = results[0].stats["batch"][
        "distinct_predicates"
    ]


@pytest.mark.benchmark(group="E11-end-to-end")
def test_match_bounded_scan(benchmark):
    graph = cached_collab(SIZE)
    pattern = team_pattern()
    result = benchmark(lambda: match_bounded(graph, pattern))
    benchmark.extra_info["match_pairs"] = result.relation.num_pairs


@pytest.mark.benchmark(group="E11-end-to-end")
def test_match_bounded_indexed(benchmark):
    graph = cached_collab(SIZE)
    pattern = team_pattern()
    index = _warm_index(graph)
    result = benchmark(lambda: match_bounded(graph, pattern, index=index))
    benchmark.extra_info["match_pairs"] = result.relation.num_pairs
