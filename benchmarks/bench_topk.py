"""E13 — bulk top-K ranking vs. the naive per-match path.

Two seeded workloads, both with 5000+ matches of the output node, both
asserting (always, on any host) that the ranked output — order, scores and
``RankedMatch`` evidence — is *identical* across the naive path, the bulk
context path and the ``workers=N`` parallel path:

* **prunable** — witness-edge weights are heterogeneous: a small elite of
  hubs is directly wired to its team (weight-1 witnesses) while the other
  5000 hubs reach their teams through a relay (weight-2 witnesses).  The
  bulk path's admissible bound (minimum incident witness weight) proves
  every weight-2 hub is outside the top-10 after scoring just the elite,
  so lazy selection runs ~10 Dijkstras instead of ~10 000.  The >= 2x
  speedup assertion runs on *any* host — the win is algorithmic
  (deterministic pruning), not parallelism.
* **uniform** — every witness weighs 1, so the bound cannot separate
  anything and every match must be fully scored.  This is the worst case
  for laziness, and an honest stress for fan-out: per-match Dijkstras over
  5-node components are so cheap that per-call pool forks and shipping
  5000 ``RankedMatch`` results back dominate (the same Amdahl shape as
  E12's sharded-query case), so on >= 4 cores the assertion is a
  catastrophic-regression floor (>= 0.5x vs. naive, measured number always
  printed), and on smaller hosts it is skipped with the measured number.
  Fan-out is timed ranking-only (same pre-built result graph as the other
  two paths) so the comparison is apples-to-apples.

The file also enforces the subsystem's contract change at the door:
``k < 1`` raises ``RankingError`` for every metric, in the engine and in
the CLI.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cli import main as cli_main
from repro.engine.engine import QueryEngine
from repro.engine.parallel import ParallelExecutor
from repro.errors import RankingError
from repro.graph.digraph import Graph
from repro.graph.io import save_graph
from repro.matching.bounded import match_bounded
from repro.graph.index import AttributeIndex
from repro.pattern.builder import PatternBuilder
from repro.pattern.parser import save_pattern
from repro.ranking.metrics import METRICS
from repro.ranking.social_impact import rank_matches
from repro.ranking.social_impact import top_k as naive_top_k
from repro.ranking.topk import RankingContext, bulk_top_k_detail, bulk_top_k_scores

from benchmarks.conftest import summary_recorder

REGULAR = 5000
ELITE = 24
K = 10
WORKERS = 4
CORES = os.cpu_count() or 1

summary = summary_recorder(
    "E13", workers=WORKERS, regular_teams=REGULAR, elite_teams=ELITE, k=K
)


def clustered_graph(direct: bool) -> Graph:
    """5024 disjoint teams; ``direct=False`` routes regular teams via relays.

    Every hub (field SA) must reach its SD team members within 2 hops.
    Elite hubs are always wired directly (witness weight 1); regular hubs
    are wired through a non-matching relay (witness weight 2) unless
    ``direct`` forces weight-1 witnesses everywhere (the uniform workload).
    """
    graph = Graph(name="ranking-bench")
    for index in range(ELITE):
        hub = f"elite{index:05d}"
        graph.add_node(hub, field="SA", experience=9)
        for member in range(3):
            sd = f"{hub}sd{member}"
            graph.add_node(sd, field="SD", experience=5)
            graph.add_edge(hub, sd)
    for index in range(REGULAR):
        hub = f"hub{index:05d}"
        graph.add_node(hub, field="SA", experience=7)
        members = [f"{hub}sd{member}" for member in range(4)]
        for sd in members:
            graph.add_node(sd, field="SD", experience=4)
        if direct:
            for sd in members:
                graph.add_edge(hub, sd)
        else:
            relay = f"{hub}relay"
            graph.add_node(relay, field="X", experience=1)
            graph.add_edge(hub, relay)
            for sd in members:
                graph.add_edge(relay, sd)
    return graph


def team_pattern():
    return (
        PatternBuilder("bench-team")
        .node("SA", "experience >= 5", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .edge("SA", "SD", 2)
        .build(require_output=True)
    )


@pytest.fixture(scope="module", params=["prunable", "uniform"])
def workload(request):
    graph = clustered_graph(direct=request.param == "uniform")
    pattern = team_pattern()
    result = match_bounded(graph, pattern, index=AttributeIndex(graph))
    assert result.is_match
    result_graph = result.result_graph()
    matches = len(rank_matches(result_graph))
    assert matches >= 5000, f"workload must have 5k+ matches, got {matches}"
    return request.param, graph, pattern, result_graph


def test_bulk_ranking_vs_naive(workload, summary):
    """Wall-clock and identity: naive vs. bulk vs. workers=N, ranking only.

    All three paths rank the *same pre-built result graph* (k experts out
    of 5024 matches), so the measured ratios isolate the ranking stage —
    evaluation and result-graph construction are shared setup.
    """
    name, _graph, _pattern, result_graph = workload

    start = time.perf_counter()
    naive = naive_top_k(result_graph, K)
    t_naive = time.perf_counter() - start

    start = time.perf_counter()
    context = RankingContext(result_graph)
    bulk = bulk_top_k_detail(context, K)
    t_bulk = time.perf_counter() - start

    with ParallelExecutor(WORKERS) as executor:
        start = time.perf_counter()
        parallel_context = RankingContext(result_graph)
        parallel = bulk_top_k_detail(
            parallel_context, K, score_many=executor.rank_many
        )
        t_parallel = time.perf_counter() - start

    # Identity first — order, ranks and evidence, on every host.
    assert bulk == naive, f"[{name}] bulk top-K diverged from naive"
    assert parallel == naive, f"[{name}] workers={WORKERS} top-K diverged"

    speedup = t_naive / t_bulk
    par_speedup = t_naive / t_parallel
    scored = context.stats["details_scored"]
    pruned = context.stats["pruned_by_bound"]
    print(
        f"\n[E13/{name}] {REGULAR + ELITE} matches, k={K}: "
        f"naive {t_naive * 1e3:.0f}ms, bulk {t_bulk * 1e3:.0f}ms "
        f"({scored} scored, {pruned} pruned) -> {speedup:.1f}x; "
        f"{WORKERS}-worker {t_parallel * 1e3:.0f}ms -> {par_speedup:.1f}x "
        f"({CORES} cores)"
    )
    summary.record(
        f"ranking_{name}",
        seconds_naive=t_naive,
        seconds_bulk=t_bulk,
        seconds_parallel=t_parallel,
        speedup=speedup,
        scored=scored,
        pruned=pruned,
    )

    if name == "prunable":
        # The bound prunes ~every weight-2 hub: this is an algorithmic win
        # and must hold on any host, single-core included.
        assert pruned >= REGULAR - K, f"bound pruning disengaged: {pruned}"
        assert speedup >= 2.0, (
            f"bulk lazy ranking should beat naive >= 2x at "
            f"{REGULAR + ELITE} matches; got {speedup:.2f}x"
        )
    else:
        # Nothing is prunable and per-match scoring is tiny, so pool forks
        # and result shipping dominate — assert only the catastrophic-
        # regression floor where cores exist (E12's sharded-case policy);
        # identity above is the real always-on guarantee.
        if CORES < WORKERS:
            pytest.skip(
                f"uniform: host has {CORES} core(s); {WORKERS} workers cannot "
                f"win wall-clock (bulk {speedup:.2f}x, parallel "
                f"{par_speedup:.2f}x; results identical)"
            )
        assert par_speedup >= 0.5, (
            f"{WORKERS}-worker scoring regressed catastrophically on "
            f"{CORES} cores: {par_speedup:.2f}x"
        )


def test_bulk_identity_for_alternative_metrics(workload):
    """Every pluggable metric: bulk == rank_all()[:k], scores included."""
    name, _graph, _pattern, result_graph = workload
    if name != "prunable":
        pytest.skip("metric identity is workload-independent; checked once")
    for metric in METRICS.values():
        naive = metric.rank_all(result_graph)[:K]
        bulk = bulk_top_k_scores(RankingContext(result_graph), K, metric)
        assert bulk == naive, f"metric {metric.name} diverged"


def test_k_below_one_raises_everywhere(tmp_path):
    """The contract change: k < 1 is RankingError for every metric."""
    graph = clustered_graph(direct=True)
    pattern = team_pattern()
    engine = QueryEngine()
    engine.register_graph("bench", graph)
    for metric in METRICS:
        for bad in (0, -1):
            with pytest.raises(RankingError):
                engine.top_k("bench", pattern, bad, metric=metric)
    graph_file = str(save_graph(graph, tmp_path / "bench.json"))
    pattern_file = str(save_pattern(pattern, tmp_path / "bench.pattern"))
    for metric in METRICS:
        code = cli_main(["topk", "--graph", graph_file, "--pattern",
                         pattern_file, "-k", "0", "--metric", metric])
        assert code == 2, f"CLI accepted k=0 for metric {metric}"
