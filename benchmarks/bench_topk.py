"""E10 — "how top-K matches are selected based on the ranking function".

Times the two stages of top-K expert selection: building the weighted
result graph from the match state, and ranking every output-node match by
social impact.  Expected shape: result-graph construction dominates; the
ranking stage is Dijkstra-per-match over a graph that is much smaller than
G; K itself is almost free (ranking sorts once).
"""

import pytest

from benchmarks.conftest import cached_collab, team_pattern
from repro.matching.bounded import match_bounded
from repro.matching.result_graph import build_result_graph
from repro.ranking.metrics import METRICS
from repro.ranking.social_impact import rank_matches, top_k

SIZES = (500, 1500)


def _matched(size):
    graph = cached_collab(size)
    pattern = team_pattern(senior=4)
    result = match_bounded(graph, pattern)
    assert result.is_match, "benchmark workload must produce matches"
    return result


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="E10-result-graph")
def test_result_graph_construction(benchmark, size):
    result = _matched(size)
    result_graph = benchmark(
        lambda: build_result_graph(
            result.graph, result.pattern, result.relation, state=result._state
        )
    )
    benchmark.extra_info["matches"] = result_graph.num_nodes
    benchmark.extra_info["witness_edges"] = result_graph.num_edges


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="E10-ranking")
def test_rank_all_matches(benchmark, size):
    result_graph = _matched(size).result_graph()
    ranked = benchmark(lambda: rank_matches(result_graph))
    benchmark.extra_info["candidates_ranked"] = len(ranked)


@pytest.mark.parametrize("k", (1, 5, 25))
@pytest.mark.benchmark(group="E10-topk")
def test_top_k_selection(benchmark, k):
    result_graph = _matched(1500).result_graph()
    experts = benchmark(lambda: top_k(result_graph, k))
    benchmark.extra_info["k"] = k
    benchmark.extra_info["returned"] = len(experts)


@pytest.mark.parametrize("metric_name", sorted(METRICS))
@pytest.mark.benchmark(group="E10-metrics")
def test_alternative_metrics(benchmark, metric_name):
    """'Other metrics can be readily supported': their relative costs."""
    result_graph = _matched(500).result_graph()
    metric = METRICS[metric_name]
    scored = benchmark(lambda: metric.rank_all(result_graph))
    benchmark.extra_info["candidates_ranked"] = len(scored)


@pytest.mark.benchmark(group="E10-shape")
def test_shape_topk_cost_independent_of_k(benchmark):
    """Selecting K=1 vs K=25 costs the same: ranking happens once."""
    import time

    result_graph = _matched(1500).result_graph()

    def measure():
        started = time.perf_counter()
        top_k(result_graph, 1)
        small_k = time.perf_counter() - started
        started = time.perf_counter()
        top_k(result_graph, 25)
        large_k = time.perf_counter() - started
        return small_k, large_k

    small_k, large_k = benchmark.pedantic(measure, rounds=5, iterations=1)
    benchmark.extra_info["k1_ms"] = round(small_k * 1e3, 3)
    benchmark.extra_info["k25_ms"] = round(large_k * 1e3, 3)
    assert large_k < small_k * 3 + 0.01  # same order of magnitude
