"""E7 — "in average, the graphs can be reduced by 57%".

Times both compression algorithms on both synthetic datasets and records
the achieved size reduction (|V|+|E| eliminated).  Expected shape: a
substantial reduction — the Twitter-like graph (many structurally
interchangeable audience nodes) lands around 60%, the denser collaboration
network lower; the simulation method is never finer than bisimulation but
costs far more to build.
"""

import pytest

from benchmarks.conftest import cached_collab, cached_twitter
from repro.compression.compress import compress

DATASETS = ("collab", "twitter")
METHODS = ("bisimulation", "simulation")


def _dataset(name):
    if name == "collab":
        return cached_collab(1500)
    return cached_twitter(3000)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.benchmark(group="E7-compress")
def test_compression_build(benchmark, dataset, method):
    graph = _dataset(dataset)
    compressed = benchmark.pedantic(
        lambda: compress(graph, attrs=("field",), method=method),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["size_reduction_pct"] = round(
        compressed.size_reduction * 100, 1
    )
    benchmark.extra_info["nodes"] = (
        f"{graph.num_nodes}->{compressed.quotient.num_nodes}"
    )
    benchmark.extra_info["edges"] = (
        f"{graph.num_edges}->{compressed.quotient.num_edges}"
    )
    # Shape band: substantial but not degenerate reduction.
    assert 0.10 <= compressed.size_reduction <= 0.95


@pytest.mark.benchmark(group="E7-shape")
def test_shape_average_reduction_band(benchmark):
    """Shape check vs the paper's 57% average: our two datasets average a
    substantial reduction (recorded for EXPERIMENTS.md)."""

    def measure():
        reductions = [
            compress(_dataset(name), attrs=("field",)).size_reduction
            for name in DATASETS
        ]
        return sum(reductions) / len(reductions)

    average = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["average_size_reduction_pct"] = round(average * 100, 1)
    assert average > 0.30
