"""Shared workloads for the benchmark harness (experiments E4-E10).

Benchmarks regenerate the quantitative claims of the demo's §III.  Absolute
numbers depend on hardware and on Python; the *shapes* (who wins, by
roughly what factor, where crossovers fall) are what EXPERIMENTS.md records
against the paper.
"""

from __future__ import annotations

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import collaboration_graph, twitter_like_graph
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern


def team_pattern(bound: int = 2, senior: int = 5) -> Pattern:
    """The recurring hiring query: SA leading SD/BA/ST within ``bound`` hops."""
    return (
        PatternBuilder("team")
        .node("SA", f"experience >= {senior}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 2", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", bound)
        .edge("SA", "BA", bound + 1)
        .edge("SD", "ST", bound)
        .edge("BA", "ST", bound)
        .build(require_output=True)
    )


def unit_pattern(senior: int = 5) -> Pattern:
    """The same query with every bound 1 (plain simulation)."""
    return (
        PatternBuilder("team-unit")
        .node("SA", f"experience >= {senior}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 2", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", 1)
        .edge("SA", "BA", 1)
        .edge("SD", "ST", 1)
        .edge("BA", "ST", 1)
        .build(require_output=True)
    )


_GRAPH_CACHE: dict[tuple, Graph] = {}


def cached_collab(n: int, seed: int = 0) -> Graph:
    key = ("collab", n, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = collaboration_graph(n, seed=seed)
    return _GRAPH_CACHE[key]


def cached_twitter(n: int, seed: int = 0) -> Graph:
    key = ("twitter", n, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = twitter_like_graph(n, seed=seed)
    return _GRAPH_CACHE[key]


@pytest.fixture(scope="session")
def collab_small() -> Graph:
    return cached_collab(300)


@pytest.fixture(scope="session")
def collab_medium() -> Graph:
    return cached_collab(1000)


@pytest.fixture(scope="session")
def collab_large() -> Graph:
    return cached_collab(2500)


@pytest.fixture(scope="session")
def twitter_graph() -> Graph:
    return cached_twitter(3000)
