"""Shared workloads for the benchmark harness (experiments E4-E10).

Benchmarks regenerate the quantitative claims of the demo's §III.  Absolute
numbers depend on hardware and on Python; the *shapes* (who wins, by
roughly what factor, where crossovers fall) are what EXPERIMENTS.md records
against the paper.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import collaboration_graph, twitter_like_graph
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern


class SummaryRecorder:
    """Accumulates one experiment's measurements into ``BENCH_<id>.json``.

    Benchmarks print human-readable lines *and* record the same numbers
    here so the perf trajectory is machine-readable: CI uploads the JSON
    files as artifacts and ``benchmarks/report.py`` renders them.  The
    output directory comes from ``$REPRO_BENCH_DIR`` (default: the
    current working directory); the file is rewritten after every
    :meth:`record`, so a partially-failed run still leaves the
    measurements that did complete.
    """

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.path = (
            Path(os.environ.get("REPRO_BENCH_DIR", "."))
            / f"BENCH_{experiment}.json"
        )
        self.metrics: dict[str, object] = {}
        # Parallel-speedup numbers are meaningless without the host they
        # were measured on; every summary carries it so report.py (and a
        # reader diffing two CI artifacts) can tell a hardware change
        # from a regression.
        self.host: dict[str, object] = {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        }
        self.settings: dict[str, object] = {}

    def record_settings(self, **settings: object) -> None:
        """Declare experiment knobs (worker counts, budgets) once per run."""
        self.settings.update(settings)

    def record(self, name: str, **values: object) -> None:
        """Store one measurement group and flush the summary file."""
        self.metrics[name] = values
        payload = {
            "experiment": self.experiment,
            "host": self.host,
            "settings": self.settings,
            "metrics": self.metrics,
        }
        self.path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def summary_recorder(experiment: str, **settings: object) -> pytest.fixture:
    """A module-scoped fixture factory: one recorder per benchmark module.

    Keyword arguments become the run's recorded settings (worker counts,
    workload sizes, budgets) and land in the JSON next to the host info.
    """

    @pytest.fixture(scope="module", name="summary")
    def fixture() -> SummaryRecorder:
        recorder = SummaryRecorder(experiment)
        recorder.record_settings(**settings)
        return recorder

    return fixture


def team_pattern(bound: int = 2, senior: int = 5) -> Pattern:
    """The recurring hiring query: SA leading SD/BA/ST within ``bound`` hops."""
    return (
        PatternBuilder("team")
        .node("SA", f"experience >= {senior}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 2", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", bound)
        .edge("SA", "BA", bound + 1)
        .edge("SD", "ST", bound)
        .edge("BA", "ST", bound)
        .build(require_output=True)
    )


def unit_pattern(senior: int = 5) -> Pattern:
    """The same query with every bound 1 (plain simulation)."""
    return (
        PatternBuilder("team-unit")
        .node("SA", f"experience >= {senior}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 2", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", 1)
        .edge("SA", "BA", 1)
        .edge("SD", "ST", 1)
        .edge("BA", "ST", 1)
        .build(require_output=True)
    )


_GRAPH_CACHE: dict[tuple, Graph] = {}


def cached_collab(n: int, seed: int = 0) -> Graph:
    key = ("collab", n, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = collaboration_graph(n, seed=seed)
    return _GRAPH_CACHE[key]


def cached_twitter(n: int, seed: int = 0) -> Graph:
    key = ("twitter", n, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = twitter_like_graph(n, seed=seed)
    return _GRAPH_CACHE[key]


@pytest.fixture(scope="session")
def collab_small() -> Graph:
    return cached_collab(300)


@pytest.fixture(scope="session")
def collab_medium() -> Graph:
    return cached_collab(1000)


@pytest.fixture(scope="session")
def collab_large() -> Graph:
    return cached_collab(2500)


@pytest.fixture(scope="session")
def twitter_graph() -> Graph:
    return cached_twitter(3000)
