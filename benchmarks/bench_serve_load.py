"""E18 — closed-loop load on the query service (MVCC-lite snapshot epochs).

The server exists so that *serving* a query costs evaluation only: the
``(FrozenGraph, DistanceOracle, version)`` epoch is built once per publish
and shared by every in-flight request, the executor pool is warmed at
startup, and writers publish new epochs without blocking readers.  Three
claims over a twitter-like graph (``REPRO_E18_NODES`` nodes, default
50 000; CI smoke shrinks it via the environment):

* **warm epochs beat per-request engines** — a closed-loop HTTP client
  over keep-alive connections drives the service at **>= 2x** the QPS of
  a baseline that builds a fresh :class:`QueryEngine` (register + freeze
  + evaluate) for every request.  Asserted on any host: the baseline
  re-freezes the graph per request while the service amortizes one
  freeze per epoch across the run.
* **byte-identical results** — for every pattern in the mix, the JSON
  relation served over HTTP equals the direct engine relation rendered
  with the same serializer, byte for byte.
* **zero stale reads under mixed traffic** — readers race a writer that
  publishes update batches; every reply is epoch-tagged and must equal
  the twin-replay expectation for exactly that epoch (a half-applied
  batch or a mixed-epoch view cannot produce any expected relation), and
  the epochs a connection observes never go backwards.

p50/p99 latency and QPS for the read-only and mixed phases land in
``BENCH_E18.json`` for the perf trajectory.
"""

import http.client
import json
import os
import socket
import threading
import time

import pytest

from benchmarks.conftest import cached_twitter, summary_recorder, team_pattern
from repro.engine.engine import QueryEngine
from repro.pattern.parser import format_pattern
from repro.server import ExpFinderService, QueryServer, ServiceConfig

NODES = int(os.environ.get("REPRO_E18_NODES", "50000"))
BASELINE_REQUESTS = 3
WARM_REQUESTS = 60
READ_CLIENTS = 3
MIXED_READS_PER_CLIENT = 8
UPDATE_BURSTS = 4
QPS_FLOOR = 2.0

summary = summary_recorder(
    "E18",
    nodes=NODES,
    baseline_requests=BASELINE_REQUESTS,
    warm_requests=WARM_REQUESTS,
    read_clients=READ_CLIENTS,
    update_bursts=UPDATE_BURSTS,
    qps_floor=QPS_FLOOR,
)

#: The request mix: the recurring hiring query at two seniority cutoffs.
PATTERNS = {
    "team-senior": format_pattern(team_pattern(senior=5)),
    "team-principal": format_pattern(team_pattern(senior=7)),
}


def percentile(samples, fraction):
    ranked = sorted(samples)
    index = min(len(ranked) - 1, int(fraction * len(ranked)))
    return ranked[index]


class Client:
    """One keep-alive HTTP/1.1 connection (the closed-loop unit)."""

    def __init__(self, address):
        host, port = address
        self.conn = http.client.HTTPConnection(host, port, timeout=120)
        self.conn.connect()
        # request() writes headers and body separately; TCP_NODELAY keeps
        # the body from stalling behind the server's delayed ACK.
        self.conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def post(self, path, payload):
        body = json.dumps(payload)
        self.conn.request("POST", path, body=body)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def close(self):
        self.conn.close()


@pytest.fixture(scope="module")
def graph():
    return cached_twitter(NODES)


@pytest.fixture(scope="module")
def server(graph):
    service = ExpFinderService(ServiceConfig(max_inflight=READ_CLIENTS + 2))
    service.register_graph("twitter", graph)
    with QueryServer(service) as srv:
        srv.start()
        yield srv


def canonical(relation_dict):
    return json.dumps(relation_dict, sort_keys=True)


class TestServeLoad:
    def test_warm_epochs_beat_per_request_engines(self, graph, server, summary):
        pattern_items = sorted(PATTERNS.items())

        # Baseline: what serving costs when every request builds its own
        # engine — register (freeze) + evaluate, torn down afterwards.
        start = time.perf_counter()
        baseline_relations = {}
        for index in range(BASELINE_REQUESTS):
            name, text = pattern_items[index % len(pattern_items)]
            engine = QueryEngine()
            try:
                engine.register_graph("twitter", graph)
                result = engine.evaluate("twitter", team_pattern(
                    senior=5 if name == "team-senior" else 7
                ))
                baseline_relations[name] = canonical(result.relation.to_dict())
            finally:
                engine.close()
        baseline_seconds = time.perf_counter() - start
        qps_baseline = BASELINE_REQUESTS / baseline_seconds

        # Warm: the service already holds the epoch; requests pay
        # evaluation (or an epoch-cache hit) plus JSON.
        client = Client(server.address)
        latencies = []
        served = {}
        try:
            start = time.perf_counter()
            for index in range(WARM_REQUESTS):
                name, text = pattern_items[index % len(pattern_items)]
                issued = time.perf_counter()
                status, reply = client.post(
                    "/graphs/twitter/evaluate", {"pattern": text}
                )
                latencies.append(time.perf_counter() - issued)
                assert status == 200, reply
                served[name] = canonical(reply["relation"])
            warm_seconds = time.perf_counter() - start
        finally:
            client.close()
        qps_warm = WARM_REQUESTS / warm_seconds

        # Byte identity against the direct engine, per pattern.
        for name in PATTERNS:
            assert served[name] == baseline_relations[name], (
                f"served relation for {name} diverges from the direct engine"
            )

        speedup = qps_warm / qps_baseline
        p50 = percentile(latencies, 0.50)
        p99 = percentile(latencies, 0.99)
        print(
            f"\nE18 read-only: baseline {qps_baseline:.2f} qps, "
            f"warm {qps_warm:.2f} qps ({speedup:.1f}x), "
            f"p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms"
        )
        summary.record(
            "read_only",
            qps_baseline=qps_baseline,
            qps_warm=qps_warm,
            speedup=speedup,
            p50_seconds=p50,
            p99_seconds=p99,
            byte_identical=True,
        )
        assert speedup >= QPS_FLOOR, (
            f"warm serving managed only {speedup:.2f}x the per-request-engine "
            f"baseline (floor {QPS_FLOOR}x)"
        )

    def test_mixed_read_write_zero_stale_reads(self, graph, server, summary):
        """Readers race update bursts; every reply must be exactly the
        relation of the epoch it claims to be from (twin replay)."""
        pattern = team_pattern(senior=5)
        text = PATTERNS["team-senior"]

        # A twin registration isolated from the read-only phase, plus a
        # local twin graph replaying the same updates for expectations.
        twin = graph.copy(name="twitter-rw")
        server.service.register_graph("twitter-rw", graph.copy(name="twitter-rw"))
        engine = QueryEngine()
        engine.register_graph("twin", twin)
        expected = {
            0: canonical(engine.evaluate("twin", pattern).relation.to_dict())
        }

        # Toggle two initial SA matches in and out of the predicate in one
        # batch: flip both, or neither — per-epoch expectations capture it.
        sa_matches = sorted(
            json.loads(expected[0])["sets"]["SA"], key=repr
        )
        assert len(sa_matches) >= 2, "workload needs at least two SA matches"
        targets = sa_matches[:2]
        original = {
            node: graph.attrs(node)["experience"] for node in targets
        }

        stop = threading.Event()
        failures = []
        latencies = []
        reads = []
        phase_start = time.perf_counter()

        def read_loop():
            client = Client(server.address)
            try:
                while not stop.is_set():
                    issued = time.perf_counter()
                    status, reply = client.post(
                        "/graphs/twitter-rw/evaluate", {"pattern": text}
                    )
                    latencies.append(time.perf_counter() - issued)
                    if status != 200:
                        failures.append(f"status {status}: {reply}")
                        continue
                    reads.append((reply["epoch"], canonical(reply["relation"])))
            finally:
                client.close()

        threads = [threading.Thread(target=read_loop) for _ in range(READ_CLIENTS)]
        for thread in threads:
            thread.start()
        writer = Client(server.address)
        try:
            for burst in range(UPDATE_BURSTS):
                drop = burst % 2 == 0
                updates = [
                    {
                        "op": "set-attr",
                        "node": node,
                        "attr": "experience",
                        "value": 0 if drop else original[node],
                    }
                    for node in targets
                ]
                status, reply = writer.post(
                    "/graphs/twitter-rw/update", {"updates": updates}
                )
                assert status == 200, reply
                # replay on the twin and pin the expectation to the epoch
                for item in updates:
                    twin.update_attrs(item["node"], experience=item["value"])
                expected[reply["epoch"]] = canonical(
                    engine.evaluate("twin", pattern).relation.to_dict()
                )
                # let readers observe this epoch before the next burst
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            phase_end = time.perf_counter()
            writer.close()
            engine.close()

        assert not failures, failures
        assert reads, "mixed phase produced no successful reads"
        stale = [
            (epoch, relation)
            for epoch, relation in reads
            if expected.get(epoch) != relation
        ]
        assert not stale, (
            f"{len(stale)} stale/torn reads, first at epoch {stale[0][0]}"
        )
        # the toggled batch must actually change the relation between epochs
        assert len(set(expected.values())) >= 2
        # all pins drained; exactly one live epoch remains
        registry_stats = server.service.registry.stats()
        assert registry_stats["graphs"]["twitter-rw"]["pins"] == 0
        assert registry_stats["graphs"]["twitter-rw"]["live_epochs"] == 1

        qps = len(reads) / (phase_end - phase_start)
        p50 = percentile(latencies, 0.50)
        p99 = percentile(latencies, 0.99)
        epochs_observed = sorted({epoch for epoch, _ in reads})
        print(
            f"E18 mixed: {len(reads)} reads across epochs {epochs_observed}, "
            f"{UPDATE_BURSTS} bursts, 0 stale reads, "
            f"p50 {p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms"
        )
        summary.record(
            "mixed_read_write",
            reads=len(reads),
            update_bursts=UPDATE_BURSTS,
            stale_reads=0,
            epochs_observed=epochs_observed,
            qps=qps,
            p50_seconds=p50,
            p99_seconds=p99,
        )

    def test_service_counters_recorded(self, server, summary):
        """Snapshot the lifecycle counters into the summary artifact."""
        stats = server.service.stats()
        counters = stats["registry"]["counters"]
        assert counters["epochs_published"] >= 1 + UPDATE_BURSTS
        assert stats["admission"]["rejected_full"] == 0
        summary.record(
            "service_counters",
            **counters,
            admitted=stats["admission"]["admitted"],
            peak_inflight=stats["admission"]["peak_inflight"],
        )
