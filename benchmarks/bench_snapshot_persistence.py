"""E17 — memory-mapped snapshot persistence vs. rebuild-from-dict.

The binary snapshot catalogue exists so a process that needs a
:class:`FrozenGraph` (or a :class:`DistanceOracle`) pays an ``mmap`` and a
header check instead of seconds of freeze / label construction.  Three
claims, all seeded so failures replay exactly:

* **frozen reload** — on a 1M-edge random digraph
  (``random_digraph(200_000, 1_000_000, seed=0)``), mapping a stored
  snapshot back (``GraphStore.load_snapshot``, checksum verified, version
  validated) is **>= 10x faster** than ``FrozenGraph.freeze`` from the
  dict graph.  Asserted on any host: the load is O(metadata) — the CSR
  buffers and attribute columns are zero-copy views over the mapping —
  while the freeze walks every node and edge.
* **oracle reload** — reloading stored distance-oracle labels
  (``GraphStore.load_oracle``) is **>= 10x faster** than
  ``DistanceOracle.build`` from the snapshot (a multi-source BFS per
  landmark).  Same reasoning, bigger margin.
* **identity everywhere** — the reloaded snapshot's buffers are
  byte-identical to the originals, node attributes survive, a bounded
  query over the store-loaded snapshot returns exactly the dict-backed
  relation, and reloaded oracle distances equal freshly built ones on a
  seeded sample.  (The exhaustive 127-seed store-served differential
  sweep lives in tests/test_differential.py.)

Save cost and file size are reported for the record (one-off, amortized
across every later load), with no wall-clock assertion.
"""

import random
import time

from benchmarks.conftest import cached_collab, summary_recorder
from repro.engine.storage import GraphStore
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_digraph
from repro.graph.oracle import DistanceOracle
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder

import pytest

NODES = 200_000
EDGES = 1_000_000
ORACLE_NODES = 50_000
SPEEDUP_FLOOR = 10.0

summary = summary_recorder(
    "E17",
    nodes=NODES,
    edges=EDGES,
    oracle_nodes=ORACLE_NODES,
    speedup_floor=SPEEDUP_FLOOR,
)


@pytest.fixture(scope="module")
def graph():
    return random_digraph(NODES, EDGES, seed=0)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return GraphStore(tmp_path_factory.mktemp("e17-store"))


def _best_of(repeats, action):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_frozen_reload_beats_refreeze(graph, store, summary):
    """mmap reload >= 10x faster than freeze-from-dict, byte-identical."""
    t_freeze, frozen = _best_of(2, lambda: FrozenGraph.freeze(graph))
    start = time.perf_counter()
    path = store.save_snapshot("e17", frozen)
    t_save = time.perf_counter() - start
    t_load, loaded = _best_of(
        3, lambda: store.load_snapshot("e17", expected_version=graph.version)
    )
    speedup = t_freeze / t_load
    print(
        f"\n[E17/frozen] {NODES} nodes / {EDGES} edges: "
        f"freeze {t_freeze:.3f}s, save {t_save:.3f}s "
        f"({path.stat().st_size / 1e6:.1f} MB), mmap reload {t_load * 1e3:.1f}ms "
        f"-> {speedup:.0f}x"
    )
    summary.record(
        "frozen_reload",
        freeze_seconds=t_freeze,
        save_seconds=t_save,
        load_seconds=t_load,
        file_bytes=path.stat().st_size,
        speedup=speedup,
    )

    # Identity: every CSR buffer byte-equal, labels and attributes intact.
    assert loaded.out_offsets.tobytes() == frozen.out_offsets.tobytes()
    assert loaded.out_targets.tobytes() == frozen.out_targets.tobytes()
    assert loaded.in_offsets.tobytes() == frozen.in_offsets.tobytes()
    assert loaded.in_targets.tobytes() == frozen.in_targets.tobytes()
    assert loaded.labels == frozen.labels
    rng = random.Random(17)
    for node in (rng.randrange(NODES) for _ in range(100)):
        assert loaded.node_attrs(node) == graph.attrs(node)

    assert speedup >= SPEEDUP_FLOOR, (
        f"mmap reload only {speedup:.1f}x faster than freeze "
        f"(floor {SPEEDUP_FLOOR}x): load {t_load:.4f}s vs freeze {t_freeze:.3f}s"
    )


def test_query_over_loaded_snapshot_is_identical(graph, store, summary):
    """A bounded query over the store-loaded snapshot matches exactly."""
    pattern = (
        PatternBuilder("e17-probe")
        .node("A", "x >= 8", label="L0", output=True)
        .node("B", "x >= 8", label="L1")
        .edge("A", "B", 2)
        .build(require_output=True)
    )
    if not store.has_snapshot("e17"):  # standalone run of this test
        store.save_snapshot("e17", FrozenGraph.freeze(graph))
    loaded = store.load_snapshot("e17", expected_version=graph.version)
    start = time.perf_counter()
    expected = match_bounded(graph, pattern)
    t_dict = time.perf_counter() - start
    start = time.perf_counter()
    got = match_bounded(graph, pattern, frozen=loaded)
    t_loaded = time.perf_counter() - start
    print(
        f"[E17/query] bounded probe: dict-backed {t_dict:.3f}s, "
        f"store-loaded snapshot {t_loaded:.3f}s, "
        f"|M| = {sum(len(v) for v in expected.relation.to_dict()['sets'].values())}"
    )
    summary.record(
        "query_identity", dict_seconds=t_dict, loaded_seconds=t_loaded
    )
    assert got.relation == expected.relation
    assert got.relation.to_dict() == expected.relation.to_dict()


def test_oracle_reload_beats_rebuild(store, summary):
    """Reloading stored labels >= 10x faster than rebuilding them."""
    graph = cached_collab(ORACLE_NODES)
    frozen = FrozenGraph.freeze(graph)
    t_build, oracle = _best_of(
        1, lambda: DistanceOracle.build(frozen, cap=2)
    )
    start = time.perf_counter()
    path = store.save_oracle("e17", oracle)
    t_save = time.perf_counter() - start
    t_load, loaded = _best_of(
        3, lambda: store.load_oracle("e17", expected_version=graph.version)
    )
    speedup = t_build / t_load
    print(
        f"[E17/oracle] cap-2 labels for {ORACLE_NODES} nodes: "
        f"build {t_build:.3f}s, save {t_save:.3f}s "
        f"({path.stat().st_size / 1e6:.1f} MB), mmap reload {t_load * 1e3:.1f}ms "
        f"-> {speedup:.0f}x"
    )
    summary.record(
        "oracle_reload",
        build_seconds=t_build,
        save_seconds=t_save,
        load_seconds=t_load,
        file_bytes=path.stat().st_size,
        speedup=speedup,
    )

    assert loaded.compatible_with(frozen)
    rng = random.Random(29)
    for _ in range(200):
        source = rng.randrange(ORACLE_NODES)
        target = rng.randrange(ORACLE_NODES)
        if source != target:
            assert loaded.distance(source, target) == oracle.distance(
                source, target
            )

    assert speedup >= SPEEDUP_FLOOR, (
        f"oracle reload only {speedup:.1f}x faster than rebuild "
        f"(floor {SPEEDUP_FLOOR}x): load {t_load:.4f}s vs build {t_build:.3f}s"
    )
