"""E16 — runaway-query guards: bombs die fast, good queries don't pay.

A shared engine cannot let one adversarial query starve every tenant; the
estimator-driven guards (PR 6) must make that promise *cheap*.  Three
claims on seeded generator graphs:

* **query bomb, node budget**: a wildcard-bound cycle with everything-
  matches predicates over a hub-heavy 20k-node ``twitter_like_graph``
  (unguarded: ~10^8 row entries, minutes of wall clock — the estimator's
  own cost projection is put on the record instead of timing it) returns
  a *partial* result under a 100k-visit budget in a few seconds, with the
  tripped guard and the visit count in ``MatchResult.stats``.
* **query bomb, wall clock**: the same bomb under a 0.5 s time limit with
  sharded workers aborts the in-flight pool and returns partial well
  inside the CI smoke step's 60 s timeout.
* **well-behaved workload**: the recurring E11/E12 hiring query over a
  10k-node ``collaboration_graph`` with a generous budget is byte-
  identical to the unguarded run and regresses < 10% (best-of-three) —
  guards are pure insurance when nothing trips.

Every number lands in ``BENCH_E16.json`` (with host info and the budget
settings) for the perf trajectory.
"""

import time

import pytest

from benchmarks.conftest import (
    cached_collab,
    cached_twitter,
    summary_recorder,
    team_pattern,
)
from repro.engine.engine import QueryEngine
from repro.engine.estimator import QueryBudget, estimate_pattern
from repro.graph.frozen import FrozenGraph
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder

BOMB_SIZE = 20_000
GOOD_SIZE = 10_000
BOMB_BUDGET = 100_000
BOMB_SECONDS = 0.5
GENEROUS = 10**9
WORKERS = 4

summary = summary_recorder(
    "E16",
    bomb_graph_nodes=BOMB_SIZE,
    good_graph_nodes=GOOD_SIZE,
    bomb_budget_visits=BOMB_BUDGET,
    bomb_time_limit=BOMB_SECONDS,
    generous_budget_visits=GENEROUS,
    workers=WORKERS,
)


def bomb_pattern():
    """Everything matches, every bound is ``'*'``, and the cycle keeps the
    removal fixpoint from pruning anything early: the planner's worst case."""
    return (
        PatternBuilder("bomb")
        .node("A", "experience >= 0", output=True)
        .node("B", "experience >= 0")
        .node("C", "experience >= 0")
        .edge("A", "B", None)
        .edge("B", "C", None)
        .edge("C", "A", None)
        .build(require_output=True)
    )


@pytest.fixture(scope="module")
def bomb_graph():
    return cached_twitter(BOMB_SIZE)


def best_of(runs, fn):
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, result = elapsed, value
    return best, result


def test_node_budget_defuses_bomb(bomb_graph, summary):
    """Guarded bomb: partial result in seconds, not the projected minutes."""
    pattern = bomb_pattern()
    frozen = FrozenGraph.freeze(bomb_graph)
    ids = frozen.ids()
    candidate_ids = {
        u: frozenset(ids[v] for v in vs)
        for u, vs in simulation_candidates(bomb_graph, pattern).items()
    }
    projection = estimate_pattern(frozen, pattern, candidate_ids)

    engine = QueryEngine()
    engine.register_graph("g", bomb_graph)
    budget = QueryBudget(node_visits=BOMB_BUDGET, allow_partial=True)
    start = time.perf_counter()
    result = engine.evaluate(
        "g", pattern, budget=budget, use_cache=False, cache_result=False
    )
    seconds = time.perf_counter() - start

    assert result.stats["partial"] is True, result.stats
    assert result.stats["guard"] == "node-budget", result.stats
    visits = result.stats["visits"]
    print(
        f"\n[E16/bomb] wildcard cycle on {BOMB_SIZE} nodes: estimator "
        f"projects ~{projection.total_visits:.3g} visits unguarded; guarded "
        f"run stopped after {visits} visits in {seconds:.2f}s"
    )
    summary.record(
        "node_budget_bomb",
        seconds=seconds,
        visits=visits,
        projected_visits=projection.total_visits,
        pairs=result.relation.num_pairs,
    )
    # Charge granularity (per-source balls, bitset arrival batches) lets
    # the budget overshoot by bounded slop — never by the orders of
    # magnitude the unguarded bomb costs.
    assert visits < BOMB_BUDGET * 2, (visits, BOMB_BUDGET)
    assert seconds < 30.0, f"guarded bomb took {seconds:.1f}s"


def test_time_limit_aborts_sharded_bomb(bomb_graph, summary):
    """Wall-clock guard cancels in-flight shard workers, returns partial."""
    pattern = bomb_pattern()
    engine = QueryEngine()
    engine.register_graph("g", bomb_graph)
    budget = QueryBudget(seconds=BOMB_SECONDS, allow_partial=True)
    start = time.perf_counter()
    result = engine.evaluate(
        "g",
        pattern,
        budget=budget,
        workers=WORKERS,
        use_cache=False,
        cache_result=False,
    )
    seconds = time.perf_counter() - start

    assert result.stats["partial"] is True, result.stats
    print(
        f"\n[E16/time-limit] {WORKERS}-worker bomb with a {BOMB_SECONDS}s "
        f"limit: aborted after {seconds:.2f}s wall clock "
        f"(guard={result.stats['guard']})"
    )
    summary.record(
        "time_limit_bomb",
        seconds=seconds,
        limit=BOMB_SECONDS,
        guard=result.stats["guard"],
    )
    # Shard spin-up and the post-abort merge are outside the limit; what
    # matters is staying orders of magnitude under the unguarded minutes
    # (and the CI smoke step's 60s timeout).
    assert seconds < 30.0, f"time-limited bomb took {seconds:.1f}s"


def test_guards_are_free_when_nothing_trips(summary):
    """Well-behaved query + generous budget: identical result, < 10% cost."""
    graph = cached_collab(GOOD_SIZE)
    pattern = team_pattern()
    engine = QueryEngine()
    engine.register_graph("g", graph)
    kwargs = dict(use_cache=False, cache_result=False)
    budget = QueryBudget(node_visits=GENEROUS, allow_partial=True)

    baseline = engine.evaluate("g", pattern, **kwargs)  # warms the snapshot
    guarded_once = engine.evaluate("g", pattern, budget=budget, **kwargs)
    assert guarded_once.stats.get("partial") is False, guarded_once.stats
    assert guarded_once.relation == baseline.relation
    assert guarded_once.relation.to_dict() == baseline.relation.to_dict()

    # Best-of-5: the workload is ~100ms, so scheduler jitter on a small
    # CI host can dwarf the effect being measured with fewer runs.
    t_plain, plain = best_of(5, lambda: engine.evaluate("g", pattern, **kwargs))
    t_guarded, guarded = best_of(
        5, lambda: engine.evaluate("g", pattern, budget=budget, **kwargs)
    )
    assert guarded.relation == plain.relation  # identity, always
    ratio = t_guarded / t_plain
    print(
        f"\n[E16/overhead] hiring query on {GOOD_SIZE} nodes "
        f"({plain.relation.num_pairs} pairs): unguarded {t_plain:.3f}s, "
        f"guarded {t_guarded:.3f}s -> {ratio:.2f}x "
        f"({guarded.stats['visits']} visits charged)"
    )
    summary.record(
        "well_behaved_overhead",
        seconds_unguarded=t_plain,
        seconds_guarded=t_guarded,
        ratio=ratio,
        visits=guarded.stats["visits"],
        pairs=plain.relation.num_pairs,
    )
    assert ratio <= 1.10, (
        f"guards must cost < 10% on well-behaved workloads, got {ratio:.2f}x"
    )
