"""E4 — "how efficient the query engine evaluates queries".

Regenerates the cost comparison behind the paper's motivation (§I):
subgraph isomorphism (NP-complete) vs graph simulation (quadratic) vs
bounded simulation (cubic), across growing collaboration networks.

Expected shape: simulation <= bounded simulation << isomorphism-enumeration,
with superlinear growth for the bounded matcher.
"""

import pytest

from benchmarks.conftest import cached_collab, team_pattern, unit_pattern
from repro.matching.bounded import match_bounded
from repro.matching.isomorphism import count_isomorphisms, has_isomorphism
from repro.matching.simulation import match_simulation

SIZES = (300, 1000, 2500)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="E4-simulation")
def test_simulation_scaling(benchmark, size):
    graph = cached_collab(size)
    pattern = unit_pattern()
    result = benchmark(lambda: match_simulation(graph, pattern))
    benchmark.extra_info["graph_size"] = graph.size
    benchmark.extra_info["match_pairs"] = result.relation.num_pairs


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="E4-bounded")
def test_bounded_simulation_scaling(benchmark, size):
    graph = cached_collab(size)
    pattern = team_pattern()
    result = benchmark(lambda: match_bounded(graph, pattern))
    benchmark.extra_info["graph_size"] = graph.size
    benchmark.extra_info["match_pairs"] = result.relation.num_pairs


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="E4-isomorphism")
def test_isomorphism_existence_scaling(benchmark, size):
    """Existence check only; full enumeration is exponential (see below)."""
    graph = cached_collab(size)
    pattern = unit_pattern()
    benchmark(lambda: has_isomorphism(graph, pattern))
    benchmark.extra_info["graph_size"] = graph.size


@pytest.mark.benchmark(group="E4-isomorphism")
def test_isomorphism_enumeration_blowup(benchmark):
    """Counting embeddings shows the combinatorial blow-up isomorphism
    carries even on a small graph (capped at 20k embeddings)."""
    graph = cached_collab(300)
    pattern = unit_pattern(senior=4)
    count = benchmark(lambda: count_isomorphisms(graph, pattern, limit=20_000))
    benchmark.extra_info["embeddings"] = count


@pytest.mark.benchmark(group="E4-shape")
def test_shape_bounded_costs_more_than_simulation(benchmark):
    """Shape check: the cubic matcher pays more than the quadratic one on
    the same graph, and both complete in interactive time."""
    import time

    graph = cached_collab(2500)
    bounded_pattern = team_pattern()
    simulation_pattern = unit_pattern()

    def measure():
        started = time.perf_counter()
        match_simulation(graph, simulation_pattern)
        simulation_seconds = time.perf_counter() - started
        started = time.perf_counter()
        match_bounded(graph, bounded_pattern)
        bounded_seconds = time.perf_counter() - started
        return simulation_seconds, bounded_seconds

    simulation_seconds, bounded_seconds = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    benchmark.extra_info["simulation_seconds"] = round(simulation_seconds, 4)
    benchmark.extra_info["bounded_seconds"] = round(bounded_seconds, 4)
    # Bounded simulation does strictly more work (per-candidate truncated
    # BFS); allow generous noise margin.
    assert bounded_seconds > simulation_seconds * 0.8
