"""E14 — frozen CSR snapshots vs. the dict-of-dicts hot path.

Four claims, all on a seeded 50k-node collaboration graph
(``collaboration_graph(50_000, seed=0)``), so failures replay exactly:

* **BFS kernel** — bounded successor-row construction (one truncated
  reachability search per source candidate, filtered against child
  candidates: the workload that dominates bounded-simulation evaluation)
  runs >= 2x faster through :func:`frozen_successor_rows` than through
  per-candidate ``bounded_descendants`` over the dict graph.  Asserted on
  any host: the win is algorithmic (shared bitset-parallel traversal + set
  algebra), not core-count-dependent.
* **evaluation kernel** — end-to-end ``match_bounded`` with a frozen
  snapshot beats the dict-backed matcher >= 2x on the same deep-bound
  workload, with a byte-identical relation.  Asserted on any host.
* **shard payloads** — pickled frozen ball sub-snapshots (what
  ``ParallelExecutor`` now ships to workers) are strictly smaller than
  pickling the equivalent induced dict ``Graph`` (what it used to ship).
  Asserted per shard.
* **identity everywhere** — relations, successor rows and ball covers from
  the frozen kernels equal the dict-backed results exactly.

Snapshot build cost and the ball-cover kernel speedup are reported for the
record; they are one-off / noise-sensitive respectively, so they carry no
wall-clock assertion.

The deep ``*``-bound workload is deliberate: the paper's unbounded pattern
edges are exactly where per-candidate BFS repeats the most work, and where
the bitset kernel's shared traversal pays off hardest (typically 5-15x
here; shallow-bound patterns route through the per-source strategy and win
by smaller constant factors).
"""

import pickle
import time

import pytest

from benchmarks.conftest import cached_collab, summary_recorder
from repro.graph.distance import bounded_descendants
from repro.graph.frozen import FrozenGraph
from repro.graph.index import AttributeIndex
from repro.graph.partition import decompose
from repro.matching.bounded import frozen_successor_rows, match_bounded
from repro.matching.simulation import simulation_candidates
from repro.pattern.builder import PatternBuilder

SIZE = 50_000

summary = summary_recorder("E14")


@pytest.fixture(scope="module")
def graph():
    return cached_collab(SIZE)


@pytest.fixture(scope="module")
def frozen(graph):
    return FrozenGraph.freeze(graph)


def reach_pattern():
    """Senior SAs that can reach (``*``) a seasoned tester.

    Selective endpoints (a few hundred sources, ~2k targets) keep the
    output small, so the timing isolates traversal — the quantity the
    snapshot exists to accelerate — rather than row materialization.
    """
    return (
        PatternBuilder("deep-reach")
        .node("SA", "experience >= 15", field="SA", output=True)
        .node("ST", "experience >= 9", field="ST")
        .edge("SA", "ST", None)
        .build(require_output=True)
    )


def test_snapshot_build_cost(graph):
    """One-off freeze cost, for the record (no wall-clock assertion)."""
    start = time.perf_counter()
    snapshot = FrozenGraph.freeze(graph)
    seconds = time.perf_counter() - start
    assert snapshot.num_nodes == graph.num_nodes
    assert snapshot.num_edges == graph.num_edges
    print(
        f"\n[E14/build] freezing {SIZE} nodes / {graph.num_edges} edges: "
        f"{seconds:.3f}s"
    )


def test_bfs_kernel_speedup(graph, frozen, summary):
    """Successor-row construction: frozen kernels >= 2x the dict path."""
    pattern = reach_pattern()
    candidates = simulation_candidates(graph, pattern)
    assert candidates["SA"] and candidates["ST"], "workload must be non-trivial"

    start = time.perf_counter()
    dict_rows = {}
    for source in sorted(candidates["SA"], key=frozen.id_of):
        reach = bounded_descendants(graph, source, None)
        dict_rows[source] = {
            node: dist for node, dist in reach.items() if node in candidates["ST"]
        }
    t_dict = time.perf_counter() - start

    ids = frozen.ids()
    candidate_ids = {
        u: frozenset(ids[v] for v in vs) for u, vs in candidates.items()
    }
    spec = {"SA": tuple(pattern.out_edges("SA"))}
    start = time.perf_counter()
    frozen_rows = frozen_successor_rows(frozen, spec, candidate_ids)
    t_frozen = time.perf_counter() - start

    labels = frozen.labels
    converted = {
        labels[source_id]: {labels[n]: d for n, d in entries.items()}
        for source_id, entries in frozen_rows[("SA", "ST")].items()
    }
    assert converted == dict_rows  # identity, always

    speedup = t_dict / t_frozen
    entries = sum(len(row) for row in dict_rows.values())
    print(
        f"\n[E14/bfs-kernel] {len(dict_rows)} sources, {entries} row entries "
        f"on {SIZE} nodes: dict {t_dict:.2f}s, frozen {t_frozen:.2f}s "
        f"-> {speedup:.1f}x"
    )
    summary.record(
        "bfs_kernel",
        seconds_dict=t_dict,
        seconds_frozen=t_frozen,
        speedup=speedup,
        sources=len(dict_rows),
    )
    assert speedup >= 2.0, (
        f"frozen successor-row kernel must be >= 2x the dict path, "
        f"got {speedup:.2f}x"
    )


def test_evaluation_kernel_speedup(graph, frozen, summary):
    """End-to-end bounded matching: frozen snapshot >= 2x, same relation."""
    pattern = reach_pattern()
    index = AttributeIndex(graph)
    index.lookup("field", "SA")  # build postings outside the timers

    start = time.perf_counter()
    plain = match_bounded(graph, pattern, index=index)
    t_dict = time.perf_counter() - start

    start = time.perf_counter()
    accelerated = match_bounded(graph, pattern, index=index, frozen=frozen)
    t_frozen = time.perf_counter() - start

    assert accelerated.relation == plain.relation  # identity, always
    assert accelerated.relation.to_dict() == plain.relation.to_dict()

    speedup = t_dict / t_frozen
    print(
        f"\n[E14/evaluation] deep-reach query on {SIZE} nodes "
        f"({plain.relation.num_pairs} pairs): dict {t_dict:.2f}s, "
        f"frozen {t_frozen:.2f}s -> {speedup:.1f}x"
    )
    summary.record(
        "evaluation",
        seconds_dict=t_dict,
        seconds_frozen=t_frozen,
        speedup=speedup,
        pairs=plain.relation.num_pairs,
    )
    assert speedup >= 2.0, (
        f"frozen evaluation must be >= 2x the dict-backed matcher, "
        f"got {speedup:.2f}x"
    )


def test_ball_cover_kernel(graph, frozen):
    """Ball decomposition on the snapshot: identical shards, reported speed."""
    pattern = reach_pattern()
    candidates = simulation_candidates(graph, pattern)

    start = time.perf_counter()
    plain = decompose(graph, pattern, candidates, 4)
    t_dict = time.perf_counter() - start
    start = time.perf_counter()
    accelerated = decompose(graph, pattern, candidates, 4, frozen=frozen)
    t_frozen = time.perf_counter() - start

    assert len(accelerated) == len(plain)
    for mine, theirs in zip(accelerated, plain):
        assert mine.pivots == theirs.pivots and mine.nodes == theirs.nodes
    print(
        f"\n[E14/ball-cover] {sum(s.num_pivots for s in plain)} pivots into "
        f"{len(plain)} shards: dict {t_dict:.2f}s, frozen {t_frozen:.2f}s "
        f"-> {t_dict / t_frozen:.1f}x (report only)"
    )


def test_shard_payloads_smaller_than_dict_graphs(graph, frozen):
    """Frozen ball sub-snapshots pickle strictly smaller than dict subgraphs.

    This is the exact payload swap ``ParallelExecutor`` made: workers used
    to receive ``shard.subgraph(graph)`` (a dict ``Graph``); they now
    receive ``frozen.induced(shard.nodes, include_attrs=False)`` — flat
    CSR buffers plus the label table.
    """
    # A moderately selective bounded pattern so balls materialize (the
    # adaptive shipping rule picks induced subgraphs for selective covers).
    pattern = (
        PatternBuilder("ball")
        .node("SA", "experience >= 13", field="SA", output=True)
        .node("ST", "experience >= 7", field="ST")
        .edge("SA", "ST", 2)
        .build(require_output=True)
    )
    candidates = simulation_candidates(graph, pattern)
    shards = decompose(graph, pattern, candidates, 4, frozen=frozen)
    assert shards, "decomposition produced no shards"
    old_total = new_total = 0
    for shard in shards:
        old_payload = pickle.dumps(shard.subgraph(graph))
        new_payload = pickle.dumps(
            frozen.induced(shard.nodes, include_attrs=False)
        )
        old_total += len(old_payload)
        new_total += len(new_payload)
        assert len(new_payload) < len(old_payload), (
            f"shard {shard.index}: frozen payload {len(new_payload)}B is not "
            f"smaller than dict payload {len(old_payload)}B"
        )
    whole_old = len(pickle.dumps(graph))
    whole_new = len(pickle.dumps(frozen))
    print(
        f"\n[E14/payload] {len(shards)} shards: dict {old_total / 1e6:.2f}MB "
        f"-> frozen {new_total / 1e6:.2f}MB "
        f"({old_total / max(new_total, 1):.1f}x smaller); whole graph with "
        f"attribute columns (spawn-only, fork ships nothing): "
        f"{whole_old / 1e6:.2f}MB -> {whole_new / 1e6:.2f}MB"
    )
