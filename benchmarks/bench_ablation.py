"""Ablation benchmarks for the design choices DESIGN.md calls out.

ABL-1  The bounded matcher's materialized successor index (S/R/cnt with a
       removal worklist) versus the naive fixpoint that re-runs truncated
       BFS on every refinement round — why the cubic algorithm is
       implemented the way it is.
ABL-2  The engine's route ladder: the same query served from the cache,
       from the compressed graph, and directly — quantifying what each
       §II mechanism buys.
ABL-3  Result-graph construction from matcher state versus fresh BFS —
       the payoff of keeping the matcher's S-index alive.
ABL-4  The engine's bounded-reachability index across a query *workload*
       (several patterns over one graph) — repeated truncated BFS served
       from cache versus recomputed.
"""

import pytest

from benchmarks.conftest import cached_collab, cached_twitter, team_pattern
from repro.engine.engine import QueryEngine
from repro.matching.bounded import match_bounded
from repro.matching.reference import naive_bounded
from repro.matching.result_graph import build_result_graph


@pytest.mark.parametrize("size", (300, 800))
@pytest.mark.benchmark(group="ABL1-indexed-matcher")
def test_indexed_bounded_matcher(benchmark, size):
    graph = cached_collab(size)
    pattern = team_pattern()
    result = benchmark(lambda: match_bounded(graph, pattern))
    benchmark.extra_info["match_pairs"] = result.relation.num_pairs


@pytest.mark.parametrize("size", (300, 800))
@pytest.mark.benchmark(group="ABL1-naive-matcher")
def test_naive_bounded_matcher(benchmark, size):
    graph = cached_collab(size)
    pattern = team_pattern()
    relation = benchmark.pedantic(
        lambda: naive_bounded(graph, pattern), rounds=3, iterations=1
    )
    benchmark.extra_info["match_pairs"] = relation.num_pairs


@pytest.mark.benchmark(group="ABL1-shape")
def test_shape_index_beats_naive(benchmark):
    """The indexed matcher must clearly beat the executable specification
    (they agree on the answer; only cost differs)."""
    import time

    graph = cached_collab(800)
    pattern = team_pattern()

    def measure():
        started = time.perf_counter()
        fast = match_bounded(graph, pattern).relation
        fast_seconds = time.perf_counter() - started
        started = time.perf_counter()
        slow = naive_bounded(graph, pattern)
        slow_seconds = time.perf_counter() - started
        assert fast == slow
        return fast_seconds, slow_seconds

    fast_seconds, slow_seconds = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info["indexed_ms"] = round(fast_seconds * 1e3, 2)
    benchmark.extra_info["naive_ms"] = round(slow_seconds * 1e3, 2)
    assert fast_seconds < slow_seconds


@pytest.fixture(scope="module")
def routed_engine():
    engine = QueryEngine()
    engine.register_graph("tw", cached_twitter(3000).copy())
    engine.compress_graph("tw", attrs=("field", "experience"))
    return engine


@pytest.mark.benchmark(group="ABL2-routes")
def test_route_direct(benchmark, routed_engine):
    pattern = team_pattern()
    result = benchmark(
        lambda: routed_engine.evaluate(
            "tw", pattern, use_cache=False, use_compression=False, cache_result=False
        )
    )
    assert result.stats["route"] == "direct"


@pytest.mark.benchmark(group="ABL2-routes")
def test_route_compressed(benchmark, routed_engine):
    pattern = team_pattern()
    result = benchmark(
        lambda: routed_engine.evaluate(
            "tw", pattern, use_cache=False, cache_result=False
        )
    )
    assert result.stats["route"] == "compressed"


@pytest.mark.benchmark(group="ABL2-routes")
def test_route_cache(benchmark, routed_engine):
    pattern = team_pattern()
    routed_engine.evaluate("tw", pattern)  # warm the cache
    result = benchmark(lambda: routed_engine.evaluate("tw", pattern))
    assert result.stats["route"] == "cache"


@pytest.mark.parametrize("size", (500, 1500))
@pytest.mark.benchmark(group="ABL3-result-graph-from-state")
def test_result_graph_from_state(benchmark, size):
    result = match_bounded(cached_collab(size), team_pattern(senior=4))
    benchmark(
        lambda: build_result_graph(
            result.graph, result.pattern, result.relation, state=result._state
        )
    )


@pytest.mark.parametrize("size", (500, 1500))
@pytest.mark.benchmark(group="ABL3-result-graph-fresh-bfs")
def test_result_graph_fresh_bfs(benchmark, size):
    result = match_bounded(cached_collab(size), team_pattern(senior=4))
    benchmark(
        lambda: build_result_graph(
            result.graph, result.pattern, result.relation, state=None
        )
    )


def _query_workload():
    """Five library queries sharing candidate neighbourhoods."""
    from repro.datasets.queries import QUERY_LIBRARY

    return [build() for build in QUERY_LIBRARY.values()]


@pytest.mark.benchmark(group="ABL4-reach-index")
def test_workload_without_index(benchmark):
    graph = cached_twitter(3000)
    workload = _query_workload()
    benchmark(lambda: [match_bounded(graph, q).relation for q in workload])


@pytest.mark.benchmark(group="ABL4-reach-index")
def test_workload_with_index(benchmark):
    from repro.graph.reach_index import BoundedReachIndex

    graph = cached_twitter(3000)
    workload = _query_workload()
    index = BoundedReachIndex(graph, max_depth=4)

    relations = benchmark(
        lambda: [match_bounded(graph, q, reach_index=index).relation for q in workload]
    )
    plain = [match_bounded(graph, q).relation for q in workload]
    assert relations == plain
    benchmark.extra_info["index_stats"] = index.stats()
