"""E12 — parallel sharded evaluation vs. sequential bounded simulation.

Two workloads on a seeded 50k-node collaboration graph, both asserting
(always) that the parallel relation is *identical* to the sequential one,
and asserting wall-clock wins where the hardware can physically deliver
them:

* **per-batch parallelism** — 12 distinct bounded hiring queries farmed
  whole to a 4-worker pool (`QueryEngine.evaluate_many(workers=4)`).  The
  per-query serial fraction is tiny (planning plus shared candidate
  generation), so this is the near-embarrassingly-parallel case: with >= 4
  cores it must beat sequential evaluation by >= 1.5x (asserted).
* **per-query sharding** — one big query decomposed into ball shards
  (`ParallelExecutor.match`).  Amdahl bites harder here: partitioning, row
  merging and the removal fixpoint stay serial, so on >= 4 cores the bar
  is only a catastrophic-regression floor (asserted >= 0.5x — contended
  shared runners hover around break-even, and a hard "must win" assert
  would be flaky there) and the measured number is reported either way.

Worker processes cannot speed anything up without spare cores; on a
single-core host both speedup assertions are skipped (the skip message
carries the measured numbers, and the correctness assertions still run).
Everything is seeded — the graph is ``collaboration_graph(50_000, seed=0)``
— so failures reproduce exactly.
"""

import os
import time

import pytest

from benchmarks.conftest import cached_collab, summary_recorder, team_pattern
from repro.engine.engine import QueryEngine
from repro.engine.parallel import ParallelExecutor
from repro.graph.index import AttributeIndex
from repro.matching.bounded import match_bounded

SIZE = 50_000
WORKERS = 4
CORES = os.cpu_count() or 1

summary = summary_recorder("E12", workers=WORKERS, graph_nodes=SIZE)


@pytest.fixture(scope="module")
def graph():
    return cached_collab(SIZE)


def _warm_index(graph) -> AttributeIndex:
    index = AttributeIndex(graph)
    index.lookup("field", "SA")  # force the lazy build outside the timers
    return index


def _require_cores(speedup: float, label: str) -> None:
    """Skip the wall-clock assertion when the host cannot parallelise."""
    if CORES < WORKERS:
        pytest.skip(
            f"{label}: host has {CORES} core(s); {WORKERS} workers cannot win "
            f"wall-clock here (measured {speedup:.2f}x; results identical)"
        )


def test_batch_parallel_beats_sequential(graph, summary):
    """12 distinct bounded queries, sequential engine vs. 4-worker batch."""
    patterns = [
        team_pattern(bound=bound, senior=senior)
        for bound in (2, 3)
        for senior in (2, 3, 4, 5, 6, 7)
    ]
    engine = QueryEngine()
    engine.register_graph("bench", graph)
    engine.attr_index_stats("bench")  # attach cost is nil; warm via first run

    # Fair baseline: the single-process batch evaluator, so the measured
    # speedup isolates worker parallelism from PR 1's shared-candidate
    # batching (which both sides get).
    start = time.perf_counter()
    sequential = engine.evaluate_many(
        "bench", patterns, use_cache=False, cache_result=False
    )
    t_seq = time.perf_counter() - start

    start = time.perf_counter()
    parallel = engine.evaluate_many(
        "bench", patterns, use_cache=False, cache_result=False, workers=WORKERS
    )
    t_par = time.perf_counter() - start

    for seq_result, par_result in zip(sequential, parallel):
        assert par_result.relation == seq_result.relation  # always, any host

    speedup = t_seq / t_par
    print(
        f"\n[E12/batch] {len(patterns)} bounded queries on {SIZE} nodes: "
        f"sequential {t_seq:.2f}s, {WORKERS}-worker batch {t_par:.2f}s "
        f"-> {speedup:.2f}x ({CORES} cores)"
    )
    summary.record(
        "batch",
        seconds_sequential=t_seq,
        seconds_parallel=t_par,
        speedup=speedup,
        workers=WORKERS,
        cores=CORES,
    )
    _require_cores(speedup, "batch")
    assert speedup >= 1.5, (
        f"expected >= 1.5x from {WORKERS}-worker batching on {CORES} cores, "
        f"got {speedup:.2f}x"
    )


def test_sharded_query_parallelism(graph, summary):
    """One heavy query, sequential matcher vs. ball-sharded 4-worker pool."""
    pattern = team_pattern(bound=3)
    index = _warm_index(graph)

    start = time.perf_counter()
    sequential = match_bounded(graph, pattern, index=index)
    t_seq = time.perf_counter() - start

    with ParallelExecutor(WORKERS) as executor:
        start = time.perf_counter()
        parallel = executor.match(graph, pattern, index=index)
        t_par = time.perf_counter() - start

    assert parallel.relation == sequential.relation  # always, any host
    info = parallel.stats["parallel"]
    assert info["shards"] == WORKERS

    speedup = t_seq / t_par
    print(
        f"\n[E12/sharded] bound-3 team query on {SIZE} nodes: "
        f"sequential {t_seq:.2f}s, {info['shards']} shards / {WORKERS} workers "
        f"{t_par:.2f}s -> {speedup:.2f}x "
        f"(shipping={info['shipping']}, {info['pivots']} pivots, {CORES} cores)"
    )
    summary.record(
        "sharded",
        seconds_sequential=t_seq,
        seconds_parallel=t_par,
        speedup=speedup,
        shipping=info["shipping"],
        cores=CORES,
    )
    _require_cores(speedup, "sharded")
    assert speedup >= 0.5, (
        f"sharded evaluation regressed catastrophically on {CORES} cores: "
        f"{speedup:.2f}x"
    )
