"""E9 — maintaining compressed graphs vs recompressing.

The paper: "the compression module efficiently maintains the compressed
graphs, and outperforms the method that recomputes compressed graphs, even
when large batch updates are incurred."

Expected shape: split-based maintenance costs a fraction of recompression
for small batches and stays competitive as the batch grows.
"""

import time

import pytest

from benchmarks.conftest import cached_collab
from repro.compression.compress import compress
from repro.compression.maintain import MaintainedCompression
from repro.incremental.updates import random_updates

GRAPH_NODES = 1000
PERCENTS = (1, 5, 10)


def _batch(graph, percent, seed=777):
    count = max(1, graph.num_edges * percent // 100)
    return random_updates(graph, count, seed=seed)


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.benchmark(group="E9-maintain")
def test_maintenance(benchmark, percent):
    base = cached_collab(GRAPH_NODES)

    def setup():
        graph = base.copy()
        maintained = MaintainedCompression(graph, attrs=("field",))
        batch = _batch(graph, percent)
        return (maintained, batch), {}

    benchmark.pedantic(
        lambda maintained, batch: maintained.apply_batch(batch),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["percent_changed"] = percent


@pytest.mark.parametrize("percent", PERCENTS)
@pytest.mark.benchmark(group="E9-recompress")
def test_recompression(benchmark, percent):
    base = cached_collab(GRAPH_NODES)

    def setup():
        graph = base.copy()
        for update in _batch(graph, percent):
            update.apply(graph)
        return (graph,), {}

    benchmark.pedantic(
        lambda graph: compress(graph, attrs=("field",)),
        setup=setup, rounds=5, iterations=1,
    )
    benchmark.extra_info["percent_changed"] = percent


@pytest.mark.benchmark(group="E9-shape")
def test_shape_maintenance_beats_recompression(benchmark):
    """Shape check at a 5% batch, with a correctness cross-check: the
    maintained quotient answers queries exactly like a fresh compression."""
    from benchmarks.conftest import team_pattern
    from repro.compression.decompress import decompress_relation
    from repro.matching.bounded import match_bounded

    base = cached_collab(GRAPH_NODES)

    def measure():
        graph = base.copy()
        maintained = MaintainedCompression(graph, attrs=("field",))
        batch = _batch(graph, 5)
        started = time.perf_counter()
        maintained.apply_batch(batch)
        maintain_seconds = time.perf_counter() - started

        fresh_graph = base.copy()
        for update in batch:
            update.apply(fresh_graph)
        started = time.perf_counter()
        compress(fresh_graph, attrs=("field",))
        recompress_seconds = time.perf_counter() - started

        pattern = team_pattern(senior=4)
        compressed = maintained.compressed()
        on_quotient = match_bounded(compressed.quotient, pattern).relation
        # `experience` is not a compression attr here, so compare against a
        # field-only pattern instead to stay compatible.
        field_only_pattern = _field_only(pattern)
        on_quotient = match_bounded(compressed.quotient, field_only_pattern).relation
        assert decompress_relation(on_quotient, compressed) == match_bounded(
            graph, field_only_pattern
        ).relation
        return maintain_seconds, recompress_seconds

    maintain_seconds, recompress_seconds = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    benchmark.extra_info["maintain_seconds"] = round(maintain_seconds, 4)
    benchmark.extra_info["recompress_seconds"] = round(recompress_seconds, 4)
    assert maintain_seconds < recompress_seconds * 1.5


def _field_only(pattern):
    """Strip non-field conditions so the pattern reads only `field`."""
    from repro.pattern.pattern import Pattern
    from repro.pattern.predicates import Cmp

    stripped = Pattern(name=pattern.name + "-field")
    for node in pattern.nodes():
        stripped.add_node(node, Cmp("field", "==", node))
    for source, target, bound in pattern.edges():
        stripped.add_edge(source, target, bound)
    return stripped
