"""A Graph Editor session: node-level edits with standing queries.

The demo GUI's Graph Editor lets users "update and maintain data graphs".
This script drives the equivalent API session on the paper's Fig. 1
network: a pinned recruiting query watches the graph while people are
hired, re-leveled and removed — every ΔM computed by the incremental
module, never by recomputation, with the maintained compression following
along.

Run:  python examples/graph_editor.py
"""

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.expfinder import ExpFinder
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
)


def show_delta(step: str, summary: dict, query) -> None:
    delta = summary["pinned_deltas"][query.canonical_key()]
    added = ", ".join(f"+({u},{v})" for u, v in sorted(delta["added"])) or "-"
    removed = ", ".join(f"-({u},{v})" for u, v in sorted(delta["removed"])) or "-"
    print(f"  {step:<46s} ΔM added: {added:<24s} removed: {removed}")


def main() -> None:
    finder = ExpFinder()
    finder.add_graph("fig1", paper_graph())
    query = paper_pattern()
    finder.pin("fig1", query)            # the standing search
    finder.compress("fig1", attrs=("field",))

    print("initial experts:", sorted(finder.match("fig1", query).matches_of("SA")))
    print()
    print("editing session:")

    summary = finder.update("fig1", [
        NodeInsertion.with_attrs(
            "Amy", name="Amy", field="SA",
            specialty="system architect", experience=8,
        ),
        EdgeInsertion("Amy", "Mat"),     # Amy led Mat (SD within 2) ...
        EdgeInsertion("Amy", "Pat"),     # ... and Pat, who knows Jean (BA)
    ])
    show_delta("hire Amy (SA, 8y) and wire her team", summary, query)

    summary = finder.update("fig1", [AttributeUpdate("Walt", "experience", 4)])
    show_delta("Walt re-leveled to 4 years", summary, query)

    summary = finder.update("fig1", [AttributeUpdate("Walt", "experience", 6)])
    show_delta("Walt promoted back to 6 years", summary, query)

    summary = finder.update("fig1", [NodeDeletion("Jean")])
    show_delta("Jean (the only BA) leaves the company", summary, query)

    summary = finder.update("fig1", [
        NodeInsertion.with_attrs(
            "Noor", name="Noor", field="BA",
            specialty="business analyst", experience=5,
        ),
        EdgeInsertion("Pat", "Noor"),
        EdgeInsertion("Noor", "Eva"),
    ])
    show_delta("hire Noor (BA) into Pat's circle", summary, query)

    print()
    print("final experts:", sorted(finder.match("fig1", query).matches_of("SA")))
    ranked = finder.find_experts("fig1", query, k=3)
    print()
    print(finder.ranking_table(ranked))


if __name__ == "__main__":
    main()
