"""Quickstart: build a small collaboration graph, query it, rank experts.

Run:  python examples/quickstart.py
"""

from repro.expfinder import ExpFinder
from repro.graph.digraph import Graph
from repro.pattern.builder import PatternBuilder


def build_graph() -> Graph:
    """A hand-made ten-person consultancy."""
    graph = Graph(name="quickstart")
    people = {
        "ada": dict(field="SA", experience=9),
        "bo": dict(field="SA", experience=4),      # too junior for the query
        "cai": dict(field="SD", experience=5),
        "dee": dict(field="SD", experience=2),
        "eli": dict(field="SD", experience=7),
        "fay": dict(field="BA", experience=6),
        "gus": dict(field="ST", experience=3),
        "hana": dict(field="ST", experience=2),
        "ivo": dict(field="GD", experience=5),
        "june": dict(field="BA", experience=1),    # too junior as well
    }
    for person, attrs in people.items():
        graph.add_node(person, name=person, **attrs)
    graph.add_edges(
        [
            ("ada", "cai"), ("ada", "ivo"), ("ivo", "fay"),
            ("cai", "gus"), ("cai", "dee"), ("dee", "hana"),
            ("eli", "gus"), ("fay", "hana"), ("fay", "gus"),
            ("bo", "eli"), ("bo", "june"),
        ]
    )
    return graph


def build_query():
    """Hire a senior architect who led developers, analysts and testers."""
    return (
        PatternBuilder("hire-architect")
        .node("SA", "experience >= 5", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 3", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", bound=2)   # worked with a developer within 2 hops
        .edge("SA", "BA", bound=3)
        .edge("SD", "ST", bound=1)
        .edge("BA", "ST", bound=2)
        .build(require_output=True)
    )


def main() -> None:
    finder = ExpFinder()
    finder.add_graph("firm", build_graph())
    query = build_query()

    print("The query:")
    print(query.describe())
    print()

    result = finder.match("firm", query)
    print("Match relation M(Q, G):")
    for pattern_node in query.nodes():
        print(f"  {pattern_node}: {sorted(result.matches_of(pattern_node))}")
    print()

    print("Top experts by social impact (lower f = tighter collaboration):")
    ranked = finder.find_experts("firm", query, k=3)
    print(finder.ranking_table(ranked))
    print()

    best = ranked[0].node
    print(f"Drill-down on the winner, {best!r}:")
    print(finder.drill_down(result, best))


if __name__ == "__main__":
    main()
