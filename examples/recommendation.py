"""Beyond expert search: the same machinery recommends content.

The paper closes §I with: "expert search is just one of the applications of
these techniques.  The same methods can be used to, e.g., recommend movies,
find jobs, explore advertising strategies..."  This example demonstrates
that claim: a heterogeneous graph of people, films and studios is queried
with bounded simulation to recommend films, using the identical matcher,
ranking and engine — only the attribute schema changes.

Run:  python examples/recommendation.py
"""

import random

from repro.expfinder import ExpFinder
from repro.graph.digraph import Graph
from repro.pattern.builder import PatternBuilder

GENRES = ("sci-fi", "drama", "noir", "comedy")


def build_media_graph(num_people: int = 120, num_films: int = 60, seed: int = 3) -> Graph:
    """People follow critics, critics review films, studios produce them.

    Edge direction = influence/endorsement, matching the expert-search
    convention (an edge from X to Y means "X vouches for / leads to Y").
    """
    rng = random.Random(seed)
    graph = Graph(name="media")
    for index in range(num_films):
        graph.add_node(
            f"film{index}",
            kind="film",
            genre=rng.choice(GENRES),
            rating=round(rng.uniform(4.0, 9.5), 1),
        )
    for index in range(8):
        graph.add_node(f"studio{index}", kind="studio", genre=rng.choice(GENRES))
    critics = []
    for index in range(num_people):
        kind = "critic" if index < num_people // 6 else "viewer"
        node = f"{kind}{index}"
        graph.add_node(node, kind=kind, genre=rng.choice(GENRES))
        if kind == "critic":
            critics.append(node)
    # Studios produce films; critics review films (an endorsement edge);
    # viewers follow critics.
    for index in range(num_films):
        graph.add_edge(f"studio{rng.randrange(8)}", f"film{index}")
    for critic in critics:
        for film_index in rng.sample(range(num_films), rng.randint(4, 10)):
            graph.add_edge(critic, f"film{film_index}")
    for index in range(num_people // 6, num_people):
        for critic in rng.sample(critics, rng.randint(1, 3)):
            graph.add_edge(f"viewer{index}", critic)
    return graph


def recommendation_query(genre: str):
    """Recommend well-rated films of a genre reachable from an endorsing
    critic who is himself followed (socially validated) — all bounded
    simulation, no expert in sight."""
    return (
        PatternBuilder("recommend")
        .node("FILM", f'kind == "film", genre == "{genre}", rating >= 7.0',
              output=True)
        .node("CRITIC", 'kind == "critic"')
        .node("VIEWER", 'kind == "viewer"')
        .node("STUDIO", 'kind == "studio"')
        .edge("CRITIC", "FILM", 1)     # the critic endorsed the film
        .edge("VIEWER", "CRITIC", 2)   # the critic has an audience
        .edge("STUDIO", "FILM", 1)     # the film has a producing studio
        .build(require_output=True)
    )


def main() -> None:
    finder = ExpFinder()
    finder.add_graph("media", build_media_graph())
    print(finder.summary("media", attr="kind"))
    print()

    for genre in ("sci-fi", "noir"):
        query = recommendation_query(genre)
        result = finder.match("media", query)
        films = sorted(result.matches_of("FILM"))
        print(f"{genre}: {len(films)} candidate films pass the social filter")
        ranked = finder.find_experts("media", query, k=3)
        for position, match in enumerate(ranked, start=1):
            print(
                f"  #{position} {match.node} "
                f"(rating {match.attrs['rating']}, "
                f"social distance {match.rank:.2f})"
            )
        print()
    print("identical engine, matcher and ranking as expert search —")
    print("only the attribute schema changed.")


if __name__ == "__main__":
    main()
