"""The paper's running example, end to end (Examples 1-3 + §II compression).

Reproduces, on the reconstructed Fig. 1 collaboration network:

* Example 1 — the exact match relation under bounded simulation, and why
  subgraph isomorphism and plain simulation both come up empty;
* Example 2 — the social-impact ranks f(SA,Bob) = 9/5 and f(SA,Walt) = 7/3;
* Example 3 — the incremental ΔM = {(SD, Fred)} after inserting edge e1;
* the compression discussion — Pat and Fred become mutually similar and
  merge in the compressed graph.

Run:  python examples/team_formation.py
"""

from fractions import Fraction

from repro.compression.compress import compress
from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.updates import EdgeInsertion
from repro.matching.bounded import match_bounded
from repro.matching.isomorphism import count_isomorphisms
from repro.matching.simulation import match_simulation
from repro.ranking.social_impact import rank_matches
from repro.viz import ascii as views


def main() -> None:
    graph = paper_graph()
    pattern = paper_pattern()

    print("=" * 70)
    print("Example 1: matching semantics on the Fig. 1 network")
    print("=" * 70)
    print(pattern.describe())
    print()
    bounded = match_bounded(graph, pattern)
    print("Bounded simulation M(Q,G):")
    print(views.relation_summary(bounded.relation))
    print()
    print(
        "Subgraph isomorphism embeddings found:",
        count_isomorphisms(graph, pattern),
        "(needs edge-to-edge mapping: Bob has no direct BA edge)",
    )
    simulation = match_simulation(graph, pattern)
    print(
        "Plain simulation match:",
        "empty" if simulation.relation.is_empty else "nonempty",
        "(every bound treated as 1 is too restrictive)",
    )
    print()

    print("=" * 70)
    print("Example 2: ranking the SA candidates by social impact")
    print("=" * 70)
    result_graph = bounded.result_graph()
    print(views.render_result_graph(result_graph))
    print()
    ranked = rank_matches(result_graph)
    for match in ranked:
        print(
            f"  f(SA, {match.node}) = {Fraction(match.rank).limit_denominator(100)}"
            f"  (connected to {match.impact_set_size} team members)"
        )
    print(f"Top-1 expert: {ranked[0].node} — stronger social impact on the team")
    print()

    print("=" * 70)
    print("Example 3: the network changes — incremental evaluation")
    print("=" * 70)
    incremental = IncrementalBoundedSimulation(graph, pattern, state=bounded._state)
    before = incremental.relation()
    incremental.apply(EdgeInsertion(*EDGE_E1))
    added, removed = before.diff(incremental.relation())
    print(f"inserted e1 = {EDGE_E1[0]} -> {EDGE_E1[1]}")
    print(f"ΔM added:   {sorted(added)}")
    print(f"ΔM removed: {sorted(removed)}")
    print("(computed from the previous result and e1 — no recomputation)")
    print()

    print("=" * 70)
    print("Compression: Pat and Fred now simulate each other")
    print("=" * 70)
    compressed = compress(graph, attrs=("field", "specialty"), method="simulation")
    pat_class = compressed.class_of("Pat")
    fred_class = compressed.class_of("Fred")
    print(f"class(Pat) = {pat_class}, class(Fred) = {fred_class}")
    print(f"merged: {pat_class == fred_class}")
    print(
        f"compressed graph: {compressed.quotient.num_nodes} classes / "
        f"{compressed.quotient.num_edges} edges "
        f"(size reduced by {compressed.size_reduction:.0%})"
    )


if __name__ == "__main__":
    main()
