"""Coping with the dynamic world: pinned queries on an evolving network.

A recruiting query is *pinned* (the paper's "frequently issued queries,
decided by the users"), then the collaboration network receives a stream of
edge updates.  After every batch the engine reports ΔM computed by the
incremental module, and at the end the script compares incremental
maintenance against batch recomputation — the trade-off behind the paper's
"up to 10% changes for bounded simulation" claim.

Run:  python examples/dynamic_network.py
"""

import time

from repro.expfinder import ExpFinder
from repro.graph.generators import collaboration_graph
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.updates import random_updates
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder


def build_query():
    return (
        PatternBuilder("standing-search")
        .node("SA", "experience >= 6", field="SA", output=True)
        .node("SD", "experience >= 3", field="SD")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", bound=2)
        .edge("SD", "ST", bound=2)
        .build(require_output=True)
    )


def main() -> None:
    graph = collaboration_graph(400, seed=7)
    query = build_query()

    finder = ExpFinder()
    finder.add_graph("network", graph)
    finder.pin("network", query)
    print(f"network: {graph.num_nodes} people, {graph.num_edges} collaborations")
    initial = finder.match("network", query)
    print(f"initial matches of SA: {len(initial.matches_of('SA'))}")
    print()

    print("streaming update batches through the pinned query:")
    seed = 100
    for round_number in range(1, 6):
        batch = random_updates(finder.graph("network"), 20, seed=seed + round_number)
        summary = finder.update("network", batch)
        delta = summary["pinned_deltas"][query.canonical_key()]
        print(
            f"  round {round_number}: applied {summary['applied']} updates, "
            f"ΔM: +{len(delta['added'])} / -{len(delta['removed'])} pairs"
        )
    print()

    # Incremental vs recompute on one more batch, measured directly.
    base = finder.graph("network")
    for percent in (1, 5, 20):
        batch_size = max(1, base.num_edges * percent // 100)

        inc_graph = base.copy()
        maintainer = IncrementalBoundedSimulation(inc_graph, query)
        updates = random_updates(inc_graph, batch_size, seed=999)
        started = time.perf_counter()
        maintainer.apply_batch(updates)
        incremental_seconds = time.perf_counter() - started

        batch_graph = base.copy()
        for update in updates:
            update.apply(batch_graph)
        started = time.perf_counter()
        recomputed = match_bounded(batch_graph, query)
        batch_seconds = time.perf_counter() - started

        assert maintainer.relation() == recomputed.relation
        winner = "incremental" if incremental_seconds < batch_seconds else "recompute"
        print(
            f"  ΔG = {percent:>2}% of edges ({batch_size} updates): "
            f"incremental {incremental_seconds * 1e3:7.1f} ms vs "
            f"recompute {batch_seconds * 1e3:7.1f} ms -> {winner} wins"
        )
    print()
    print("small ΔG favours the incremental module; large ΔG favours recomputation,")
    print("matching the crossover behaviour reported in the paper.")


if __name__ == "__main__":
    main()
