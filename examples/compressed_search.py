"""Querying compressed graphs: same answers, much less graph.

Compresses a Twitter-like social graph with both partition algorithms,
verifies that a bounded-simulation query returns exactly the same experts
on the compressed graph (after linear decompression), and measures the
evaluation speed-up — the behaviour behind the paper's "reduced by 57% ...
reduces query evaluation time by 70%" claims.

Run:  python examples/compressed_search.py
"""

import time

from repro.compression.compress import compress
from repro.compression.decompress import decompress_relation
from repro.graph.generators import twitter_like_graph
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder


def build_query():
    """Find an experienced architect two hops from developers and testers."""
    return (
        PatternBuilder("influencer")
        .node("SA", field="SA", output=True)
        .node("SD", field="SD")
        .node("ST", field="ST")
        .edge("SA", "SD", bound=2)
        .edge("SA", "ST", bound=2)
        .edge("SD", "ST", bound=2)
        .build(require_output=True)
    )


def timed_match(graph, query):
    started = time.perf_counter()
    result = match_bounded(graph, query)
    return result, time.perf_counter() - started


def main() -> None:
    graph = twitter_like_graph(3000, seed=11)
    # Compression must preserve every attribute the query reads — here the
    # queries only test `field`, so `field` is the compression label.
    query = build_query()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print()

    original_result, original_seconds = timed_match(graph, query)
    print(f"direct evaluation: {original_seconds * 1e3:.1f} ms, "
          f"{original_result.relation.num_pairs} match pairs")
    print()

    for method in ("bisimulation", "simulation"):
        started = time.perf_counter()
        compressed = compress(graph, attrs=("field",), method=method)
        compress_seconds = time.perf_counter() - started

        quotient_result, quotient_seconds = timed_match(compressed.quotient, query)
        started = time.perf_counter()
        recovered = decompress_relation(quotient_result.relation, compressed)
        decompress_seconds = time.perf_counter() - started

        identical = recovered == original_result.relation
        total = quotient_seconds + decompress_seconds
        speedup = original_seconds / total if total > 0 else float("inf")
        print(f"[{method}]")
        print(
            f"  quotient: {compressed.quotient.num_nodes} nodes / "
            f"{compressed.quotient.num_edges} edges "
            f"(size reduction {compressed.size_reduction:.0%}; "
            f"built in {compress_seconds * 1e3:.0f} ms)"
        )
        print(
            f"  query on quotient + decompression: {total * 1e3:.1f} ms "
            f"({speedup:.1f}x faster), answers identical: {identical}"
        )
        print()

    print("compression pays off once built: every later query on this graph")
    print("runs against the quotient, and updates maintain it incrementally.")


if __name__ == "__main__":
    main()
