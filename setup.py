"""Legacy setup shim.

The offline environment has setuptools but neither network access nor the
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
This shim lets ``pip install -e . --no-use-pep517`` perform a classic
develop install; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
